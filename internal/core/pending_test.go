package core

import (
	"testing"
)

// TestPendingTupleSemantics: buffered point updates must be invisible as an
// optimization — program order holds across interleaved sets, removes,
// duplicate positions, and operations reading the object.
func TestPendingTupleSemantics(t *testing.T) {
	m, _ := NewMatrix[float64](5, 5)
	// Duplicate position: last write wins.
	_ = m.SetElement(1, 2, 2)
	_ = m.SetElement(7, 2, 2)
	// Set then remove: gone.
	_ = m.SetElement(3, 0, 0)
	_ = m.RemoveElement(0, 0)
	// Remove then set: present.
	_ = m.SetElement(4, 1, 1)
	_ = m.RemoveElement(1, 1)
	_ = m.SetElement(5, 1, 1)
	// Remove of never-present: no-op.
	_ = m.RemoveElement(4, 4)

	if nv, _ := m.NVals(); nv != 2 {
		t.Fatalf("nvals %d want 2", nv)
	}
	if x, _ := m.ExtractElement(2, 2); x != 7 {
		t.Fatalf("(2,2) = %v", x)
	}
	if x, _ := m.ExtractElement(1, 1); x != 5 {
		t.Fatalf("(1,1) = %v", x)
	}
	if _, err := m.ExtractElement(0, 0); !IsNoValue(err) {
		t.Fatalf("(0,0): %v", err)
	}

	// An operation reading the matrix sees the flushed state; point updates
	// after the operation apply on top of its result in program order.
	s := plusTimesF64(t)
	c, _ := NewMatrix[float64](5, 5)
	if err := MxM(c, NoMask, NoAccum[float64](), s, m, m, nil); err != nil {
		t.Fatal(err)
	}
	// m(1,1)=5, m(2,2)=7 are diagonal: m² has 25 and 49.
	if x, _ := c.ExtractElement(1, 1); x != 25 {
		t.Fatalf("c(1,1) = %v", x)
	}
	_ = c.SetElement(-1, 0, 4)
	if x, _ := c.ExtractElement(0, 4); x != -1 {
		t.Fatalf("post-op set lost: %v", x)
	}
	if x, _ := c.ExtractElement(2, 2); x != 49 {
		t.Fatalf("c(2,2) = %v", x)
	}

	// The transpose cache must see pending updates.
	at, _ := NewMatrix[float64](5, 5)
	if err := Transpose(at, NoMask, NoAccum[float64](), m, nil); err != nil {
		t.Fatal(err)
	}
	_ = m.SetElement(9, 0, 3) // new entry after a transpose was cached
	at2, _ := NewMatrix[float64](5, 5)
	if err := Transpose(at2, NoMask, NoAccum[float64](), m, nil); err != nil {
		t.Fatal(err)
	}
	if x, err := at2.ExtractElement(3, 0); err != nil || x != 9 {
		t.Fatalf("stale transpose cache: %v %v", x, err)
	}

	// Vector path.
	v, _ := NewVector[float64](6)
	_ = v.SetElement(1, 3)
	_ = v.SetElement(2, 3)
	_ = v.RemoveElement(3)
	_ = v.SetElement(8, 5)
	if nv, _ := v.NVals(); nv != 1 {
		t.Fatalf("vec nvals %d", nv)
	}
	if x, _ := v.ExtractElement(5); x != 8 {
		t.Fatalf("v(5) = %v", x)
	}
	// Build after pending removals on a now-empty vector must succeed.
	_ = v.RemoveElement(5)
	if err := v.Build([]int{0}, []float64{1}, NoAccum[float64]()); err != nil {
		t.Fatalf("build after pending clear: %v", err)
	}
}

package core

import "graphblas/internal/sparse"

// Element-wise operations of Table II:
//
//	eWiseAdd:  C ⊙= A ⊕ B  (set union of structures)
//	eWiseMult: C ⊙= A ⊗ B  (set intersection of structures)
//
// Following the paper's set-notation definitions, eWiseMult applies ⊗ only
// on the intersection of the stored structures — so it admits the full
// three-domain operator — while eWiseAdd copies unmatched elements of either
// input into the result, which requires all domains to coincide with the
// output domain (the C API achieves the same via implicit casts; Go's
// generics make the requirement explicit).

// EWiseAddM computes C ⊙= A ⊕ B for matrices (GrB_eWiseAdd). add is
// applied where both inputs have entries; elsewhere the single entry is
// copied.
func EWiseAddM[DC, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], add BinaryOp[DC, DC, DC], a, b *Matrix[DC], desc *Descriptor) error {
	const name = "EWiseAddM"
	if err := ewiseChecksM(name, c, mask, a, b, add.Defined()); err != nil {
		return err
	}
	an, am, bn, bm := a.nr, a.nc, b.nr, b.nc
	if desc.tran0() {
		an, am = am, an
	}
	if desc.tran1() {
		bn, bm = bm, bn
	}
	if an != bn || am != bm {
		return errf(DimensionMismatch, name, "inputs are %dx%d and %dx%d", an, am, bn, bm)
	}
	if c.nr != an || c.nc != am {
		return errf(DimensionMismatch, name, "output is %dx%d, result is %dx%d", c.nr, c.nc, an, am)
	}
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return errf(DimensionMismatch, name, "mask is %dx%d, output is %dx%d", mask.nr, mask.nc, c.nr, c.nc)
	}
	reads := maskReadsM([]*obj{&a.obj, &b.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	tran0, tran1, scmp, replace := desc.tran0(), desc.tran1(), desc.scmp(), desc.replace()
	return enqueue(name, &c.obj, reads, overwrites, func() error {
		ad := a.mdat()
		if tran0 {
			ad = a.transposed()
		}
		bd := b.mdat()
		if tran1 {
			bd = b.transposed()
		}
		t := sparse.UnionCSR(ad, bd, add.F)
		mm := resolveMatMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		c.setData(sparse.WriteCSR(c.mdat(), t, mm, accumF, replace))
		return nil
	})
}

// EWiseAddMonoidM is EWiseAddM with the operator taken from a monoid, the
// form Figure 3 line 42 uses (GrB_eWiseAdd with a GrB_Monoid).
func EWiseAddMonoidM[DC, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], m Monoid[DC], a, b *Matrix[DC], desc *Descriptor) error {
	if !m.Defined() {
		return errf(UninitializedObject, "EWiseAddMonoidM", "monoid not initialized")
	}
	return EWiseAddM(c, mask, accum, m.Op, a, b, desc)
}

// EWiseAddV computes w ⊙= u ⊕ v for vectors.
func EWiseAddV[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], add BinaryOp[DC, DC, DC], u, v *Vector[DC], desc *Descriptor) error {
	const name = "EWiseAddV"
	if err := ewiseChecksV(name, w, mask, u, v, add.Defined()); err != nil {
		return err
	}
	if u.n != v.n {
		return errf(DimensionMismatch, name, "inputs have sizes %d and %d", u.n, v.n)
	}
	if w.n != u.n {
		return errf(DimensionMismatch, name, "output has size %d, inputs have size %d", w.n, u.n)
	}
	if mask != nil && mask.n != w.n {
		return errf(DimensionMismatch, name, "mask has size %d, output has size %d", mask.n, w.n)
	}
	reads := maskReadsV([]*obj{&u.obj, &v.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	scmp, replace := desc.scmp(), desc.replace()
	return enqueue(name, &w.obj, reads, overwrites, func() error {
		t := sparse.VecUnion(u.vdat(), v.vdat(), add.F)
		vm := resolveVecMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		w.setVData(sparse.WriteVec(w.vdat(), t, vm, accumF, replace))
		return nil
	})
}

// EWiseAddMonoidV is EWiseAddV with the operator taken from a monoid.
func EWiseAddMonoidV[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], m Monoid[DC], u, v *Vector[DC], desc *Descriptor) error {
	if !m.Defined() {
		return errf(UninitializedObject, "EWiseAddMonoidV", "monoid not initialized")
	}
	return EWiseAddV(w, mask, accum, m.Op, u, v, desc)
}

// EWiseMultM computes C ⊙= A ⊗ B for matrices (GrB_eWiseMult): mul applies
// on the intersection of the stored structures, with the full three-domain
// generality of the paper's binary operators.
func EWiseMultM[DC, DA, DB, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], mul BinaryOp[DA, DB, DC], a *Matrix[DA], b *Matrix[DB], desc *Descriptor) error {
	const name = "EWiseMultM"
	if err := checkActive(name); err != nil {
		return err
	}
	if c == nil || a == nil || b == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&c.obj, name, "C"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if err := objOK(&b.obj, name, "B"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !mul.Defined() {
		return errf(UninitializedObject, name, "operator not initialized")
	}
	an, am, bn, bm := a.nr, a.nc, b.nr, b.nc
	if desc.tran0() {
		an, am = am, an
	}
	if desc.tran1() {
		bn, bm = bm, bn
	}
	if an != bn || am != bm {
		return errf(DimensionMismatch, name, "inputs are %dx%d and %dx%d", an, am, bn, bm)
	}
	if c.nr != an || c.nc != am {
		return errf(DimensionMismatch, name, "output is %dx%d, result is %dx%d", c.nr, c.nc, an, am)
	}
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return errf(DimensionMismatch, name, "mask is %dx%d, output is %dx%d", mask.nr, mask.nc, c.nr, c.nc)
	}
	reads := maskReadsM([]*obj{&a.obj, &b.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	tran0, tran1, scmp, replace := desc.tran0(), desc.tran1(), desc.scmp(), desc.replace()
	return enqueue(name, &c.obj, reads, overwrites, func() error {
		ad := a.mdat()
		if tran0 {
			ad = a.transposed()
		}
		bd := b.mdat()
		if tran1 {
			bd = b.transposed()
		}
		t := sparse.IntersectCSR(ad, bd, mul.F)
		mm := resolveMatMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		c.setData(sparse.WriteCSR(c.mdat(), t, mm, accumF, replace))
		return nil
	})
}

// EWiseMultV computes w ⊙= u ⊗ v for vectors.
func EWiseMultV[DC, DA, DB, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], mul BinaryOp[DA, DB, DC], u *Vector[DA], v *Vector[DB], desc *Descriptor) error {
	const name = "EWiseMultV"
	if err := checkActive(name); err != nil {
		return err
	}
	if w == nil || u == nil || v == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&w.obj, name, "w"); err != nil {
		return err
	}
	if err := objOK(&u.obj, name, "u"); err != nil {
		return err
	}
	if err := objOK(&v.obj, name, "v"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !mul.Defined() {
		return errf(UninitializedObject, name, "operator not initialized")
	}
	if u.n != v.n {
		return errf(DimensionMismatch, name, "inputs have sizes %d and %d", u.n, v.n)
	}
	if w.n != u.n {
		return errf(DimensionMismatch, name, "output has size %d, inputs have size %d", w.n, u.n)
	}
	if mask != nil && mask.n != w.n {
		return errf(DimensionMismatch, name, "mask has size %d, output has size %d", mask.n, w.n)
	}
	reads := maskReadsV([]*obj{&u.obj, &v.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	scmp, replace := desc.scmp(), desc.replace()
	return enqueue(name, &w.obj, reads, overwrites, func() error {
		t := sparse.VecIntersect(u.vdat(), v.vdat(), mul.F)
		vm := resolveVecMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		w.setVData(sparse.WriteVec(w.vdat(), t, vm, accumF, replace))
		return nil
	})
}

// EWiseMultSemiringM is EWiseMultM with the multiplicative operator of a
// semiring, the form Figure 3 lines 70 and 74 use.
func EWiseMultSemiringM[DC, DA, DB, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], s Semiring[DA, DB, DC], a *Matrix[DA], b *Matrix[DB], desc *Descriptor) error {
	if !s.Defined() {
		return errf(UninitializedObject, "EWiseMultSemiringM", "semiring not initialized")
	}
	return EWiseMultM(c, mask, accum, s.Mul, a, b, desc)
}

// ewiseChecksM performs the shared argument validation for the
// matrix element-wise operations.
func ewiseChecksM[DC, DM any](name string, c *Matrix[DC], mask *Matrix[DM], a, b *Matrix[DC], opDefined bool) error {
	if err := checkActive(name); err != nil {
		return err
	}
	if c == nil || a == nil || b == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&c.obj, name, "C"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if err := objOK(&b.obj, name, "B"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !opDefined {
		return errf(UninitializedObject, name, "operator not initialized")
	}
	return nil
}

// ewiseChecksV performs the shared argument validation for the vector
// element-wise operations.
func ewiseChecksV[DC, DM any](name string, w *Vector[DC], mask *Vector[DM], u, v *Vector[DC], opDefined bool) error {
	if err := checkActive(name); err != nil {
		return err
	}
	if w == nil || u == nil || v == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&w.obj, name, "w"); err != nil {
		return err
	}
	if err := objOK(&u.obj, name, "u"); err != nil {
		return err
	}
	if err := objOK(&v.obj, name, "v"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !opDefined {
		return errf(UninitializedObject, name, "operator not initialized")
	}
	return nil
}

package core

// Streaming graph engine: atomic batched edge updates (GxB-style extension).
// An update batch enters the nonblocking queue as an ordinary writer node on
// its target matrix — hazard edges order it after queued readers of the old
// content and before readers enqueued later, the executor's transactional
// snapshot makes it atomic under kernel faults, and absorption lands in a
// hypersparse delta overlay so ingestion never pays O(main store) per batch.
// The size/age merge policy compacts the overlay into the main store,
// publishing a new epoch; PinEpoch hands out immutable snapshot views that
// survive those publications.

import (
	"graphblas/internal/format"
	"graphblas/internal/obs"
	"graphblas/internal/stream"
)

// ApplyUpdateBatch applies the batch's edge inserts and deletes to the
// matrix as one atomic, hazard-ordered operation. The batch is sealed
// (validated and deduplicated last-wins) against the current dimensions at
// call time; the builder may be reused immediately. May defer.
func (m *Matrix[D]) ApplyUpdateBatch(b *stream.Batch[D]) error {
	const op = "Matrix.ApplyUpdateBatch"
	if err := objOK(&m.obj, op, "m"); err != nil {
		return err
	}
	if b == nil {
		return errf(InvalidValue, op, "nil update batch")
	}
	nr, nc := m.dims()
	d, err := b.Seal(nr, nc)
	if err != nil {
		return errf(InvalidIndex, op, "%v", err)
	}
	if d.NNZ() == 0 {
		return nil
	}
	return enqueue(op, &m.obj, nil, false, func() error {
		m.absorbDelta(d)
		return nil
	})
}

// absorbDelta layers a sealed batch over the matrix's streaming overlay and
// lets the merge policy decide whether to compact. Runs on a flush worker
// inside the executor's snapshot, so a fault panic from the stream kernels
// unwinds into a full rollback of every field touched here.
func (m *Matrix[D]) absorbDelta(d *format.HyperDelta[D]) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Point updates buffered before this batch must land first; fold them
	// into an overlay (creating one if none is live) rather than the main
	// store, so the batch path keeps its O(touched rows) cost.
	if len(m.pending) > 0 {
		p := format.DeltaFromTuples(m.nr, m.nc, m.pending)
		m.pending = nil
		m.delta = format.MergeDeltas(m.delta, p)
	}
	m.delta = stream.Absorb(m.delta, d)
	m.deltaAge++
	m.mcache = nil
	m.tcache = nil
	m.bcache = nil
	m.hcache = nil
	obs.StreamBatches.Inc()
	obs.StreamEdges.Add(int64(d.NNZ()))
	obs.StreamDeltaNNZ.Set(int64(m.delta.NNZ()))
	if m.spolicy.Due(m.delta.NNZ(), m.deltaAge) {
		m.materializeLocked()
		m.compactLocked()
	}
}

// compactLocked publishes a new epoch: the overlay merges into the main
// store and the overlay empties. The caller holds m.mu with data
// materialized. No-op when no overlay is live.
func (m *Matrix[D]) compactLocked() {
	if m.delta == nil {
		return
	}
	merged := stream.Compact(m.data, m.delta)
	m.data = merged
	m.delta = nil
	m.mcache = nil
	m.deltaAge = 0
	m.epochID++
	obs.StreamMerges.Inc()
	obs.StreamMergeBytes.Add(merged.ApproxBytes())
	obs.StreamEpochs.Inc()
	obs.StreamDeltaNNZ.Set(0)
}

// Compact forces the streaming overlay into the main store regardless of the
// merge policy, publishing a new epoch. May defer; a no-op when no overlay
// is live.
func (m *Matrix[D]) Compact() error {
	const op = "Matrix.Compact"
	if err := objOK(&m.obj, op, "m"); err != nil {
		return err
	}
	return enqueue(op, &m.obj, nil, false, func() error {
		m.compactNow()
		return nil
	})
}

// compactNow is Compact's deferred body.
func (m *Matrix[D]) compactNow() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushPendingLocked()
	m.materializeLocked()
	m.compactLocked()
}

// SetMergePolicy installs the size/age policy governing when absorbed
// batches compact into the main store, returning the previous policy. The
// zero Policy disables automatic compaction (explicit Compact only).
func (m *Matrix[D]) SetMergePolicy(p stream.Policy) (stream.Policy, error) {
	if err := objOK(&m.obj, "Matrix.SetMergePolicy", "m"); err != nil {
		return stream.Policy{}, err
	}
	m.mu.Lock()
	prev := m.spolicy
	m.spolicy = p
	m.mu.Unlock()
	return prev, nil
}

// PinEpoch returns a snapshot-isolated read view of the matrix: the current
// (main, delta) pair, pinned. Later batches, merges, and point updates
// publish fresh stores and never mutate pinned ones, so the epoch keeps
// serving exactly this content without copying. Forces completion so the
// snapshot reflects the whole enqueued sequence.
func (m *Matrix[D]) PinEpoch() (*stream.Epoch[D], error) {
	const op = "Matrix.PinEpoch"
	if err := objOK(&m.obj, op, "m"); err != nil {
		return nil, err
	}
	if err := m.obj.engine().force(op); err != nil {
		return nil, err
	}
	if err := invalidMark(&m.obj, op); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushPendingLocked()
	m.materializeLocked()
	return stream.NewEpoch(m.epochID, m.data, m.delta), nil
}

// DeltaNVals reports how many updates the streaming overlay currently holds
// (zero when fully compacted). Forces completion.
func (m *Matrix[D]) DeltaNVals() (int, error) {
	const op = "Matrix.DeltaNVals"
	if err := objOK(&m.obj, op, "m"); err != nil {
		return 0, err
	}
	if err := m.obj.engine().force(op); err != nil {
		return 0, err
	}
	if err := invalidMark(&m.obj, op); err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delta.NNZ(), nil
}

// EpochID reports the matrix's current compaction epoch; it advances once
// per published merge. Forces completion.
func (m *Matrix[D]) EpochID() (uint64, error) {
	const op = "Matrix.EpochID"
	if err := objOK(&m.obj, op, "m"); err != nil {
		return 0, err
	}
	if err := m.obj.engine().force(op); err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epochID, nil
}

package core

import (
	"sync"
	"testing"

	"graphblas/internal/faults"
	"graphblas/internal/obs"
)

// spanCollector is a concurrency-safe Tracer that keeps every emitted span.
type spanCollector struct {
	mu    sync.Mutex
	spans []*obs.Span
}

func (c *spanCollector) OnSpan(s *obs.Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

func (c *spanCollector) byOp(op string) []*obs.Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*obs.Span
	for _, s := range c.spans {
		if s.Op == op {
			out = append(out, s)
		}
	}
	return out
}

// withTracer installs a collector for the duration of a test.
func withTracer(t *testing.T) *spanCollector {
	t.Helper()
	c := &spanCollector{}
	prev := obs.SetTracer(c)
	t.Cleanup(func() { obs.SetTracer(prev) })
	return c
}

// TestObs_SpansFollowTheLifecycle: every deferred operation of a nonblocking
// sequence emits exactly one span carrying the method name, its program
// position, the consumed layout for format-dispatched kernels, and ordered
// stage timestamps.
func TestObs_SpansFollowTheLifecycle(t *testing.T) {
	withMode(t, NonBlocking, func() {
		c := withTracer(t)
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](4, 4)
		_ = a.Build([]int{0, 1, 2, 3}, []int{1, 2, 3, 0}, []float64{1, 2, 3, 4}, NoAccum[float64]())
		out, _ := NewMatrix[float64](4, 4)
		if err := MxM(out, NoMask, plusF64(), s, a, a, nil); err != nil {
			t.Fatalf("MxM: %v", err)
		}
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		spans := c.byOp("MxM")
		if len(spans) != 1 {
			t.Fatalf("MxM spans: got %d want 1", len(spans))
		}
		sp := spans[0]
		if sp.Outcome != obs.OutcomeOK {
			t.Errorf("outcome: got %v want ok (err=%v)", sp.Outcome, sp.Err)
		}
		if sp.Pos < 0 {
			t.Errorf("program position not assigned: %d", sp.Pos)
		}
		if sp.Layout == "" {
			t.Errorf("MxM span has no layout")
		}
		if sp.Bytes <= 0 {
			t.Errorf("MxM span has no bytes estimate: %d", sp.Bytes)
		}
		if sp.Enqueued.IsZero() || sp.Scheduled.IsZero() || sp.Kernel.IsZero() || sp.Done.IsZero() {
			t.Errorf("missing stage timestamp: %+v", sp)
		}
		if sp.Scheduled.Before(sp.Enqueued) || sp.Kernel.Before(sp.Scheduled) || sp.Done.Before(sp.Kernel) {
			t.Errorf("stage timestamps out of order: %+v", sp)
		}
		if sp.Duration() <= 0 || sp.QueueLatency() < 0 {
			t.Errorf("derived intervals wrong: dur=%v queue=%v", sp.Duration(), sp.QueueLatency())
		}
	})
}

// TestObs_SpanOutcomesOnFailureAndElision: a fault-failed op emits an error
// span with the rollback noted, and a dead store pruned by elision emits an
// elided span — the span stream covers every exit from the engine, not just
// commits.
func TestObs_SpanOutcomesOnFailureAndElision(t *testing.T) {
	withMode(t, NonBlocking, func() {
		c := withTracer(t)
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](3, 3)
		_ = a.Build([]int{0, 1, 2}, []int{1, 2, 0}, []float64{1, 2, 3}, NoAccum[float64]())
		out, _ := NewMatrix[float64](3, 3)

		withFaults(t, 1, faults.Rule{Site: "MxM", Kind: faults.KernelErr, Times: 1})
		// Accumulating MxM so elision cannot prune it.
		if err := MxM(out, NoMask, plusF64(), s, a, a, nil); err != nil {
			t.Fatalf("MxM enqueue: %v", err)
		}
		if err := Wait(); InfoOf(err) != PanicInfo {
			t.Fatalf("Wait: got %v want PanicInfo", err)
		}
		spans := c.byOp("MxM")
		if len(spans) != 1 {
			t.Fatalf("MxM spans: got %d want 1", len(spans))
		}
		if sp := spans[0]; sp.Outcome != obs.OutcomeError || !sp.RolledBack || sp.Err == nil {
			t.Errorf("failed op span: outcome=%v rolledBack=%v err=%v", sp.Outcome, sp.RolledBack, sp.Err)
		}
		faults.Disable()

		// Two back-to-back full overwrites of a fresh output: the first is a
		// dead store the elision pass prunes.
		b, _ := NewMatrix[float64](3, 3)
		if err := Transpose(b, NoMask, NoAccum[float64](), a, nil); err != nil {
			t.Fatalf("Transpose 1: %v", err)
		}
		if err := Transpose(b, NoMask, NoAccum[float64](), a, nil); err != nil {
			t.Fatalf("Transpose 2: %v", err)
		}
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		var elided, committed int
		for _, sp := range c.byOp("Transpose") {
			switch sp.Outcome {
			case obs.OutcomeElided:
				elided++
			case obs.OutcomeOK:
				committed++
			}
		}
		if elided != 1 || committed != 1 {
			t.Errorf("Transpose spans: elided=%d committed=%d want 1/1", elided, committed)
		}
	})
}

// TestObs_MetricsTracerAggregates: registering the built-in MetricsTracer
// turns the span stream into registry aggregates — per-op counters and
// latency histograms — visible in a snapshot.
func TestObs_MetricsTracerAggregates(t *testing.T) {
	withMode(t, NonBlocking, func() {
		prev := obs.SetTracer(obs.NewMetricsTracer())
		t.Cleanup(func() { obs.SetTracer(prev) })
		u, _ := NewVector[float64](8)
		for i := 0; i < 8; i++ {
			if err := u.SetElement(float64(i+1), i); err != nil {
				t.Fatalf("SetElement: %v", err)
			}
		}
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if got := obs.OpsExecuted.With("Vector.SetElement").Value(); got != 8 {
			t.Errorf("OpsExecuted[Vector.SetElement]: got %d want 8", got)
		}
		if got := obs.SpanOutcomes.With("ok").Value(); got < 8 {
			t.Errorf("SpanOutcomes[ok]: got %d want >= 8", got)
		}
		snap := obs.Snapshot()
		if _, ok := snap["graphblas_op_seconds"]; !ok {
			t.Errorf("snapshot missing op duration histogram; keys=%d", len(snap))
		}
	})
}

// BenchmarkObsOverheadOff measures the per-operation engine cost with no
// tracer registered — the configuration the <2% overhead budget is measured
// against (pair with BenchmarkObsOverheadOn).
func BenchmarkObsOverheadOff(b *testing.B) { benchObsOverhead(b, false) }

// BenchmarkObsOverheadOn is the same workload with the MetricsTracer
// registered, for an informational span-path cost comparison.
func BenchmarkObsOverheadOn(b *testing.B) { benchObsOverhead(b, true) }

func benchObsOverhead(b *testing.B, traced bool) {
	ResetForTesting()
	if err := Init(NonBlocking); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ResetForTesting()
		_ = Init(Blocking)
	}()
	if traced {
		prev := obs.SetTracer(obs.NewMetricsTracer())
		defer obs.SetTracer(prev)
	} else {
		prev := obs.SetTracer(nil)
		defer obs.SetTracer(prev)
	}
	const n = 64
	add, _ := NewMonoid(plusF64(), 0)
	mul := BinaryOp[float64, float64, float64]{Name: "times", F: func(x, y float64) float64 { return x * y }}
	s, _ := NewSemiring(add, mul)
	a, _ := NewMatrix[float64](n, n)
	is := make([]int, n)
	js := make([]int, n)
	vs := make([]float64, n)
	for i := 0; i < n; i++ {
		is[i], js[i], vs[i] = i, (i+1)%n, float64(i+1)
	}
	_ = a.Build(is, js, vs, NoAccum[float64]())
	u, _ := NewVector[float64](n)
	_ = u.SetElement(1, 0)
	_ = Wait()
	w, _ := NewVector[float64](n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MxV(w, NoMaskV, NoAccum[float64](), s, a, u, nil); err != nil {
			b.Fatal(err)
		}
		if err := Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

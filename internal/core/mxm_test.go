package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// plusF64 / timesF64 build the arithmetic semiring pieces locally (the
// builtins package depends on core, so core tests construct operators by
// hand).
func plusF64() BinaryOp[float64, float64, float64] {
	return BinaryOp[float64, float64, float64]{Name: "plus", F: func(x, y float64) float64 { return x + y }}
}

func plusTimesF64(t *testing.T) Semiring[float64, float64, float64] {
	t.Helper()
	add, err := NewMonoid(plusF64(), 0)
	if err != nil {
		t.Fatalf("NewMonoid: %v", err)
	}
	mul := BinaryOp[float64, float64, float64]{Name: "times", F: func(x, y float64) float64 { return x * y }}
	s, err := NewSemiring(add, mul)
	if err != nil {
		t.Fatalf("NewSemiring: %v", err)
	}
	return s
}

// TestFig2MxMSweep exhaustively checks the GrB_mxm semantics of Figure 2:
// every combination of {tranA, tranB, mask presence, SCMP, accumulator,
// REPLACE} against the dense oracle (EXPERIMENTS.md E3).
func TestFig2MxMSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const (
		anr, anc, bnc = 7, 5, 6
	)
	s := plusTimesF64(t)
	for _, tranA := range []bool{false, true} {
		for _, tranB := range []bool{false, true} {
			// Build A and B shaped so the (possibly transposed) product is
			// (anr x anc') compatible.
			ar, ac := anr, anc
			if tranA {
				ar, ac = anc, anr
			}
			br, bc := anc, bnc
			if tranB {
				br, bc = bnc, anc
			}
			a, ad := newTestMatrix(t, rng, ar, ac, 0.4)
			b, bd := newTestMatrix(t, rng, br, bc, 0.4)
			for _, useMask := range []bool{false, true} {
				for _, scmp := range []bool{false, true} {
					if scmp && !useMask {
						continue
					}
					for _, accum := range []bool{false, true} {
						for _, replace := range []bool{false, true} {
							name := fmt.Sprintf("tA=%v/tB=%v/mask=%v/scmp=%v/acc=%v/rep=%v",
								tranA, tranB, useMask, scmp, accum, replace)
							t.Run(name, func(t *testing.T) {
								c, cd := newTestMatrix(t, rng, anr, bnc, 0.3)
								mask, stored, eff := newTestMask(t, rng, anr, bnc, 0.5, 0.7)
								desc := &Descriptor{}
								if tranA {
									desc.Transpose0()
								}
								if tranB {
									desc.Transpose1()
								}
								if scmp {
									desc.CompMask()
								}
								if replace {
									desc.ReplaceOutput()
								}
								acc := NoAccum[float64]()
								if accum {
									acc = plusF64()
								}
								var mk *Matrix[bool]
								if useMask {
									mk = mask
								}
								if err := MxM(c, mk, acc, s, a, b, desc); err != nil {
									t.Fatalf("MxM: %v", err)
								}
								want := oracleMxMWrite(cd, ad, ar, ac, bd, bnc,
									tranA, tranB, stored, eff, useMask, scmp, accum, replace)
								equalDense(t, denseOf(t, c), want, name)
							})
						}
					}
				}
			}
		}
	}
}

// TestMxMErrors exercises the documented Figure 2c error returns that are
// dynamically detectable in Go.
func TestMxMErrors(t *testing.T) {
	s := plusTimesF64(t)
	a, _ := NewMatrix[float64](3, 4)
	b, _ := NewMatrix[float64](4, 5)
	c, _ := NewMatrix[float64](3, 5)

	t.Run("nil output", func(t *testing.T) {
		err := MxM[float64, float64, float64, bool](nil, nil, NoAccum[float64](), s, a, b, nil)
		if InfoOf(err) != UninitializedObject {
			t.Fatalf("got %v want UninitializedObject", err)
		}
	})
	t.Run("dimension mismatch inner", func(t *testing.T) {
		bad, _ := NewMatrix[float64](3, 5) // inner dim 3 != 4
		err := MxM(c, NoMask, NoAccum[float64](), s, a, bad, nil)
		if InfoOf(err) != DimensionMismatch {
			t.Fatalf("got %v want DimensionMismatch", err)
		}
	})
	t.Run("dimension mismatch output", func(t *testing.T) {
		badC, _ := NewMatrix[float64](2, 5)
		err := MxM(badC, NoMask, NoAccum[float64](), s, a, b, nil)
		if InfoOf(err) != DimensionMismatch {
			t.Fatalf("got %v want DimensionMismatch", err)
		}
	})
	t.Run("mask dimension mismatch", func(t *testing.T) {
		mk, _ := NewMatrix[bool](3, 4)
		err := MxM(c, mk, NoAccum[float64](), s, a, b, nil)
		if InfoOf(err) != DimensionMismatch {
			t.Fatalf("got %v want DimensionMismatch", err)
		}
	})
	t.Run("uninitialized semiring", func(t *testing.T) {
		err := MxM(c, NoMask, NoAccum[float64](), Semiring[float64, float64, float64]{}, a, b, nil)
		if InfoOf(err) != UninitializedObject {
			t.Fatalf("got %v want UninitializedObject", err)
		}
	})
	t.Run("freed input", func(t *testing.T) {
		f, _ := NewMatrix[float64](4, 5)
		if err := f.Free(); err != nil {
			t.Fatalf("Free: %v", err)
		}
		err := MxM(c, NoMask, NoAccum[float64](), s, a, f, nil)
		if InfoOf(err) != UninitializedObject {
			t.Fatalf("got %v want UninitializedObject", err)
		}
	})
	t.Run("API errors leave output untouched", func(t *testing.T) {
		if err := c.SetElement(7, 1, 1); err != nil {
			t.Fatalf("SetElement: %v", err)
		}
		bad, _ := NewMatrix[float64](9, 9)
		_ = MxM(c, NoMask, NoAccum[float64](), s, a, bad, nil)
		v, err := c.ExtractElement(1, 1)
		if err != nil || v != 7 {
			t.Fatalf("output modified by failed call: v=%v err=%v", v, err)
		}
	})
}

// TestMxMAliasing verifies output aliasing an input is safe (kernels build
// fresh storage before the write-back).
func TestMxMAliasing(t *testing.T) {
	s := plusTimesF64(t)
	a, _ := NewMatrix[float64](3, 3)
	if err := a.Build([]int{0, 1, 2}, []int{1, 2, 0}, []float64{1, 1, 1}, NoAccum[float64]()); err != nil {
		t.Fatalf("Build: %v", err)
	}
	// a is a cyclic permutation; a*a should be the square of the cycle.
	if err := MxM(a, NoMask, NoAccum[float64](), s, a, a, nil); err != nil {
		t.Fatalf("MxM aliased: %v", err)
	}
	want := dmat{{0, 2}: 1, {1, 0}: 1, {2, 1}: 1}
	equalDense(t, denseOf(t, a), want, "aliased square")
}

// TestMxVAgainstMxM cross-checks MxV and VxM (both kernel paths) against
// MxM on a 1-column / 1-row reshape.
func TestMxVAgainstMxM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := plusTimesF64(t)
	a, _ := newTestMatrix(t, rng, 8, 6, 0.4)

	u, _ := NewVector[float64](6)
	var uIdx []int
	var uVal []float64
	for j := 0; j < 6; j++ {
		if rng.Float64() < 0.5 {
			uIdx = append(uIdx, j)
			uVal = append(uVal, float64(rng.Intn(5)+1))
		}
	}
	if err := u.Build(uIdx, uVal, NoAccum[float64]()); err != nil {
		t.Fatalf("Build u: %v", err)
	}

	w, _ := NewVector[float64](8)
	if err := MxV(w, NoMaskV, NoAccum[float64](), s, a, u, nil); err != nil {
		t.Fatalf("MxV: %v", err)
	}

	// Oracle via matrix product against a 6x1 matrix.
	um, _ := NewMatrix[float64](6, 1)
	js := make([]int, len(uIdx))
	if err := um.Build(uIdx, js, uVal, NoAccum[float64]()); err != nil {
		t.Fatalf("Build um: %v", err)
	}
	cm, _ := NewMatrix[float64](8, 1)
	if err := MxM(cm, NoMask, NoAccum[float64](), s, a, um, nil); err != nil {
		t.Fatalf("MxM: %v", err)
	}
	wantIs, _, wantVs, _ := cm.ExtractTuples()
	gotIs, gotVs, _ := w.ExtractTuples()
	if len(gotIs) != len(wantIs) {
		t.Fatalf("nvals got %d want %d", len(gotIs), len(wantIs))
	}
	for k := range gotIs {
		if gotIs[k] != wantIs[k] || gotVs[k] != wantVs[k] {
			t.Errorf("entry %d: got (%d,%v) want (%d,%v)", k, gotIs[k], gotVs[k], wantIs[k], wantVs[k])
		}
	}

	// VxM with uᵀ A should equal Aᵀ u = MxV with transpose descriptor.
	w2, _ := NewVector[float64](8)
	u8, _ := NewVector[float64](8)
	var u8Idx []int
	var u8Val []float64
	for j := 0; j < 8; j++ {
		if rng.Float64() < 0.5 {
			u8Idx = append(u8Idx, j)
			u8Val = append(u8Val, float64(rng.Intn(5)+1))
		}
	}
	if err := u8.Build(u8Idx, u8Val, NoAccum[float64]()); err != nil {
		t.Fatalf("Build u8: %v", err)
	}
	wv, _ := NewVector[float64](6)
	if err := VxM(wv, NoMaskV, NoAccum[float64](), s, u8, a, nil); err != nil {
		t.Fatalf("VxM: %v", err)
	}
	wm, _ := NewVector[float64](6)
	if err := MxV(wm, NoMaskV, NoAccum[float64](), s, a, u8, Desc().Transpose0()); err != nil {
		t.Fatalf("MxV tran: %v", err)
	}
	_ = w2
	vIdx, vVal, _ := wv.ExtractTuples()
	mIdx, mVal, _ := wm.ExtractTuples()
	if len(vIdx) != len(mIdx) {
		t.Fatalf("VxM vs MxVᵀ nvals: %d vs %d", len(vIdx), len(mIdx))
	}
	for k := range vIdx {
		if vIdx[k] != mIdx[k] || vVal[k] != mVal[k] {
			t.Errorf("entry %d: VxM (%d,%v) vs MxVᵀ (%d,%v)", k, vIdx[k], vVal[k], mIdx[k], mVal[k])
		}
	}
}

// TestMxVMasked checks kernel-level mask handling in both the dot and push
// paths, including complemented masks and replace/merge modes.
func TestMxVMasked(t *testing.T) {
	s := plusTimesF64(t)
	a, _ := NewMatrix[float64](4, 4)
	// Path graph 0->1->2->3 plus a self edge at 0.
	if err := a.Build([]int{0, 0, 1, 2}, []int{0, 1, 2, 3}, []float64{1, 1, 1, 1}, NoAccum[float64]()); err != nil {
		t.Fatalf("Build: %v", err)
	}
	u, _ := NewVector[float64](4)
	for i := 0; i < 4; i++ {
		if err := u.SetElement(1, i); err != nil {
			t.Fatalf("SetElement: %v", err)
		}
	}
	mask, _ := NewVector[bool](4)
	_ = mask.SetElement(true, 0)
	_ = mask.SetElement(false, 1) // stored but false: not in effective mask
	_ = mask.SetElement(true, 2)

	for _, tran := range []bool{false, true} {
		for _, scmp := range []bool{false, true} {
			for _, replace := range []bool{false, true} {
				w, _ := NewVector[float64](4)
				_ = w.SetElement(100, 3) // pre-existing entry outside/inside mask
				desc := &Descriptor{}
				if tran {
					desc.Transpose0()
				}
				if scmp {
					desc.CompMask()
				}
				if replace {
					desc.ReplaceOutput()
				}
				if err := MxV(w, mask, NoAccum[float64](), s, a, u, desc); err != nil {
					t.Fatalf("MxV: %v", err)
				}
				// Dense oracle.
				av := [4][4]float64{}
				ah := [4][4]bool{}
				for _, e := range [][3]int{{0, 0, 1}, {0, 1, 1}, {1, 2, 1}, {2, 3, 1}} {
					av[e[0]][e[1]] = float64(e[2])
					ah[e[0]][e[1]] = true
				}
				want := map[int]float64{}
				for i := 0; i < 4; i++ {
					sum, has := 0.0, false
					for k := 0; k < 4; k++ {
						x, ok := av[i][k], ah[i][k]
						if tran {
							x, ok = av[k][i], ah[k][i]
						}
						if ok {
							sum += x
							has = true
						}
					}
					inMask := map[int]bool{0: true, 2: true}[i]
					if scmp {
						inMask = !map[int]bool{0: true, 1: true, 2: true}[i] // structure complement
					}
					if inMask {
						if has {
							want[i] = sum
						}
					} else if !replace && i == 3 {
						want[i] = 100
					}
				}
				got := map[int]float64{}
				idx, val, _ := w.ExtractTuples()
				for k := range idx {
					got[idx[k]] = val[k]
				}
				if len(got) != len(want) {
					t.Fatalf("tran=%v scmp=%v rep=%v: got %v want %v", tran, scmp, replace, got, want)
				}
				for i, v := range want {
					if got[i] != v {
						t.Errorf("tran=%v scmp=%v rep=%v: w[%d] got %v want %v", tran, scmp, replace, i, got[i], v)
					}
				}
			}
		}
	}
}

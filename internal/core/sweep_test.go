package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// oracleWrite applies the accumulate-then-mask pipeline to dense models —
// the shared final stage of every Table II operation.
func oracleWrite(c, t dmat, nr, nc int, stored, eff map[key]bool, useMask, scmp, accum, replace bool) dmat {
	z := dmat{}
	if accum {
		for k, v := range c {
			z[k] = v
		}
		for k, v := range t {
			if cv, ok := z[k]; ok {
				z[k] = cv + v
			} else {
				z[k] = v
			}
		}
	} else {
		z = t
	}
	out := dmat{}
	allow := func(k key) bool {
		if !useMask {
			return true
		}
		if scmp {
			return !stored[k]
		}
		return eff[k]
	}
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			k := key{i, j}
			if allow(k) {
				if v, ok := z[k]; ok {
					out[k] = v
				}
			} else if !replace {
				if v, ok := c[k]; ok {
					out[k] = v
				}
			}
		}
	}
	return out
}

// sweepCases enumerates the mask/accum/replace combinations shared by all
// write-pipeline sweeps.
func sweepCases(f func(useMask, scmp, accum, replace bool, name string)) {
	for _, useMask := range []bool{false, true} {
		for _, scmp := range []bool{false, true} {
			if scmp && !useMask {
				continue
			}
			for _, accum := range []bool{false, true} {
				for _, replace := range []bool{false, true} {
					f(useMask, scmp, accum, replace,
						fmt.Sprintf("mask=%v/scmp=%v/acc=%v/rep=%v", useMask, scmp, accum, replace))
				}
			}
		}
	}
}

func sweepDesc(scmp, replace bool) *Descriptor {
	d := &Descriptor{}
	if scmp {
		d.CompMask()
	}
	if replace {
		d.ReplaceOutput()
	}
	return d
}

// TestSweep_EWiseAdd runs the full write-pipeline sweep for eWiseAdd.
func TestSweep_EWiseAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	const nr, nc = 7, 6
	a, ad := newTestMatrix(t, rng, nr, nc, 0.4)
	bm, bd := newTestMatrix(t, rng, nr, nc, 0.4)
	want := dmat{}
	for k, v := range ad {
		want[k] = v
	}
	for k, v := range bd {
		if cv, ok := want[k]; ok {
			want[k] = cv + v
		} else {
			want[k] = v
		}
	}
	sweepCases(func(useMask, scmp, accum, replace bool, name string) {
		t.Run(name, func(t *testing.T) {
			c, cd := newTestMatrix(t, rng, nr, nc, 0.3)
			mask, stored, eff := newTestMask(t, rng, nr, nc, 0.5, 0.7)
			acc := NoAccum[float64]()
			if accum {
				acc = plusF64()
			}
			var mk *Matrix[bool]
			if useMask {
				mk = mask
			}
			if err := EWiseAddM(c, mk, acc, plusF64(), a, bm, sweepDesc(scmp, replace)); err != nil {
				t.Fatalf("EWiseAddM: %v", err)
			}
			equalDense(t, denseOf(t, c),
				oracleWrite(cd, want, nr, nc, stored, eff, useMask, scmp, accum, replace), name)
		})
	})
}

// TestSweep_Apply runs the write-pipeline sweep for apply.
func TestSweep_Apply(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	const nr, nc = 6, 8
	a, ad := newTestMatrix(t, rng, nr, nc, 0.45)
	neg := UnaryOp[float64, float64]{Name: "neg", F: func(x float64) float64 { return -x }}
	tmodel := dmat{}
	for k, v := range ad {
		tmodel[k] = -v
	}
	sweepCases(func(useMask, scmp, accum, replace bool, name string) {
		t.Run(name, func(t *testing.T) {
			c, cd := newTestMatrix(t, rng, nr, nc, 0.3)
			mask, stored, eff := newTestMask(t, rng, nr, nc, 0.5, 0.6)
			acc := NoAccum[float64]()
			if accum {
				acc = plusF64()
			}
			var mk *Matrix[bool]
			if useMask {
				mk = mask
			}
			if err := ApplyM(c, mk, acc, neg, a, sweepDesc(scmp, replace)); err != nil {
				t.Fatalf("ApplyM: %v", err)
			}
			equalDense(t, denseOf(t, c),
				oracleWrite(cd, tmodel, nr, nc, stored, eff, useMask, scmp, accum, replace), name)
		})
	})
}

// TestSweep_Transpose runs the write-pipeline sweep for transpose (whose
// internal result can alias shared storage — the one ownership special
// case).
func TestSweep_Transpose(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	const n = 7
	a, ad := newTestMatrix(t, rng, n, n, 0.4)
	tmodel := dmat{}
	for k, v := range ad {
		tmodel[key{k.j, k.i}] = v
	}
	sweepCases(func(useMask, scmp, accum, replace bool, name string) {
		t.Run(name, func(t *testing.T) {
			c, cd := newTestMatrix(t, rng, n, n, 0.3)
			mask, stored, eff := newTestMask(t, rng, n, n, 0.5, 0.7)
			acc := NoAccum[float64]()
			if accum {
				acc = plusF64()
			}
			var mk *Matrix[bool]
			if useMask {
				mk = mask
			}
			if err := Transpose(c, mk, acc, a, sweepDesc(scmp, replace)); err != nil {
				t.Fatalf("Transpose: %v", err)
			}
			equalDense(t, denseOf(t, c),
				oracleWrite(cd, tmodel, n, n, stored, eff, useMask, scmp, accum, replace), name)
			// The input must be untouched by the write-back (aliasing of the
			// transpose cache or a.data would corrupt it).
			equalDense(t, denseOf(t, a), ad, name+"/input-intact")
		})
	})
}

// TestSweep_ExtractSubmatrix runs the write-pipeline sweep for extract.
func TestSweep_ExtractSubmatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	a, ad := newTestMatrix(t, rng, 8, 8, 0.45)
	rows := []int{5, 2, 2, 7}
	cols := []int{0, 6, 3}
	tmodel := dmat{}
	for r, src := range rows {
		for q, cj := range cols {
			if v, ok := ad[key{src, cj}]; ok {
				tmodel[key{r, q}] = v
			}
		}
	}
	nr, nc := len(rows), len(cols)
	sweepCases(func(useMask, scmp, accum, replace bool, name string) {
		t.Run(name, func(t *testing.T) {
			c, cd := newTestMatrix(t, rng, nr, nc, 0.3)
			mask, stored, eff := newTestMask(t, rng, nr, nc, 0.5, 0.7)
			acc := NoAccum[float64]()
			if accum {
				acc = plusF64()
			}
			var mk *Matrix[bool]
			if useMask {
				mk = mask
			}
			if err := ExtractSubmatrix(c, mk, acc, a, rows, cols, sweepDesc(scmp, replace)); err != nil {
				t.Fatalf("Extract: %v", err)
			}
			equalDense(t, denseOf(t, c),
				oracleWrite(cd, tmodel, nr, nc, stored, eff, useMask, scmp, accum, replace), name)
		})
	})
}

// TestSweep_AssignScalar sweeps the assign pipeline, whose Z-building stage
// differs from the other operations (region merge instead of full result).
func TestSweep_AssignScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	const n = 7
	rows := []int{1, 4, 6}
	cols := []int{0, 3}
	sweepCases(func(useMask, scmp, accum, replace bool, name string) {
		t.Run(name, func(t *testing.T) {
			c, cd := newTestMatrix(t, rng, n, n, 0.35)
			mask, stored, eff := newTestMask(t, rng, n, n, 0.5, 0.7)
			acc := NoAccum[float64]()
			if accum {
				acc = plusF64()
			}
			var mk *Matrix[bool]
			if useMask {
				mk = mask
			}
			if err := AssignMatrixScalar(c, mk, acc, 9, rows, cols, sweepDesc(scmp, replace)); err != nil {
				t.Fatalf("AssignScalar: %v", err)
			}
			// Z model: c everywhere; assigned positions get 9 (or c+9 with
			// accum).
			z := dmat{}
			for k, v := range cd {
				z[k] = v
			}
			for _, i := range rows {
				for _, j := range cols {
					k := key{i, j}
					if accum {
						if cv, ok := z[k]; ok {
							z[k] = cv + 9
							continue
						}
					}
					z[k] = 9
				}
			}
			// Final mask stage over Z (assign consults z, not t, everywhere).
			want := dmat{}
			allow := func(k key) bool {
				if !useMask {
					return true
				}
				if scmp {
					return !stored[k]
				}
				return eff[k]
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					k := key{i, j}
					if allow(k) {
						if v, ok := z[k]; ok {
							want[k] = v
						}
					} else if !replace {
						if v, ok := cd[k]; ok {
							want[k] = v
						}
					}
				}
			}
			equalDense(t, denseOf(t, c), want, name)
		})
	})
}

// TestReadOnlyConcurrentSharing checks the Section IV multithreading rule
// this binding supports: read-only objects may be shared across goroutines
// (including concurrent first-use of the lazily built transpose cache).
func TestReadOnlyConcurrentSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	a, _ := newTestMatrix(t, rng, 40, 40, 0.2)
	s := plusTimesF64(t)
	var wg sync.WaitGroup
	results := make([]dmat, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := NewMatrix[float64](40, 40)
			if err != nil {
				t.Errorf("NewMatrix: %v", err)
				return
			}
			// Transposed read exercises the shared transpose cache.
			if err := MxM(c, NoMask, NoAccum[float64](), s, a, a, Desc().Transpose0()); err != nil {
				t.Errorf("MxM: %v", err)
				return
			}
			results[g] = denseOf(t, c)
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		if len(results[g]) != len(results[0]) {
			t.Fatalf("goroutine %d diverged", g)
		}
		for k, v := range results[0] {
			if results[g][k] != v {
				t.Fatalf("goroutine %d diverged at (%d,%d)", g, k.i, k.j)
			}
		}
	}
}

package core

// Descriptor support (Section III-C): a descriptor pairs modifier flags with
// the mask, input, and output arguments of a method. Field and value names
// mirror the GrB_ literals of Table V.

// Field identifies the method argument a descriptor setting applies to.
type Field int

const (
	// OutP is the output parameter field (GrB_OUTP).
	OutP Field = iota
	// MaskField is the mask parameter field (GrB_MASK).
	MaskField
	// Inp0 is the first input parameter field (GrB_INP0).
	Inp0
	// Inp1 is the second input parameter field (GrB_INP1).
	Inp1
)

// String returns the C API literal for the field.
func (f Field) String() string {
	switch f {
	case OutP:
		return "GrB_OUTP"
	case MaskField:
		return "GrB_MASK"
	case Inp0:
		return "GrB_INP0"
	case Inp1:
		return "GrB_INP1"
	}
	return "Field(?)"
}

// Value is a descriptor setting.
type Value int

const (
	// Replace clears the output object before the masked result is stored
	// (GrB_REPLACE; valid for OutP).
	Replace Value = iota
	// SCMP uses the structural complement of the mask (GrB_SCMP; valid for
	// MaskField).
	SCMP
	// Tran uses the transpose of the corresponding input matrix (GrB_TRAN;
	// valid for Inp0/Inp1).
	Tran
)

// String returns the C API literal for the value.
func (v Value) String() string {
	switch v {
	case Replace:
		return "GrB_REPLACE"
	case SCMP:
		return "GrB_SCMP"
	case Tran:
		return "GrB_TRAN"
	}
	return "Value(?)"
}

// Descriptor modifies the semantics of GraphBLAS methods. The zero value
// (and a nil *Descriptor) selects all defaults, the analogue of GrB_NULL.
type Descriptor struct {
	outpReplace bool
	maskSCMP    bool
	inp0Tran    bool
	inp1Tran    bool
}

// NewDescriptor creates an empty descriptor (GrB_Descriptor_new).
func NewDescriptor() (*Descriptor, error) { return &Descriptor{}, nil }

// Set records a value for a field (GrB_Descriptor_set). Invalid
// field/value combinations return InvalidValue.
func (d *Descriptor) Set(f Field, v Value) error {
	if d == nil {
		return errf(NullPointer, "Descriptor.Set", "nil descriptor")
	}
	switch {
	case f == OutP && v == Replace:
		d.outpReplace = true
	case f == MaskField && v == SCMP:
		d.maskSCMP = true
	case f == Inp0 && v == Tran:
		d.inp0Tran = true
	case f == Inp1 && v == Tran:
		d.inp1Tran = true
	default:
		return errf(InvalidValue, "Descriptor.Set", "value %v is not valid for field %v", v, f)
	}
	return nil
}

// accessors tolerate a nil receiver so operations can treat nil as the
// default descriptor throughout.

func (d *Descriptor) replace() bool { return d != nil && d.outpReplace }
func (d *Descriptor) scmp() bool    { return d != nil && d.maskSCMP }
func (d *Descriptor) tran0() bool   { return d != nil && d.inp0Tran }
func (d *Descriptor) tran1() bool   { return d != nil && d.inp1Tran }

// Desc starts a chainable descriptor builder:
//
//	core.Desc().Transpose0().CompMask().ReplaceOutput()
//
// is the Figure 3 desc_tsr descriptor.
func Desc() *Descriptor { return &Descriptor{} }

// ReplaceOutput sets GrB_OUTP = GrB_REPLACE and returns d.
func (d *Descriptor) ReplaceOutput() *Descriptor { d.outpReplace = true; return d }

// CompMask sets GrB_MASK = GrB_SCMP and returns d.
func (d *Descriptor) CompMask() *Descriptor { d.maskSCMP = true; return d }

// Transpose0 sets GrB_INP0 = GrB_TRAN and returns d.
func (d *Descriptor) Transpose0() *Descriptor { d.inp0Tran = true; return d }

// Transpose1 sets GrB_INP1 = GrB_TRAN and returns d.
func (d *Descriptor) Transpose1() *Descriptor { d.inp1Tran = true; return d }

package core

import "graphblas/internal/sparse"

// eWiseUnion (extension, after GxB_eWiseUnion): like eWiseAdd the result
// structure is the union of the inputs, but the operator applies at *every*
// union position, with caller-supplied fill values standing in for absent
// operands (alpha for A, beta for B). This restores the full three-domain
// operator generality that plain eWiseAdd gives up, and expresses
// subtraction-like merges without implicit zeros:
//
//	C = A .- B  over the union:  EWiseUnionM(c, …, Minus, a, 0, b, 0, …)

// EWiseUnionM computes C ⊙= union(A, alpha, B, beta, op) for matrices.
func EWiseUnionM[DC, DA, DB, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], op BinaryOp[DA, DB, DC], a *Matrix[DA], alpha DA, b *Matrix[DB], beta DB, desc *Descriptor) error {
	const name = "EWiseUnionM"
	if err := checkActive(name); err != nil {
		return err
	}
	if c == nil || a == nil || b == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&c.obj, name, "C"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if err := objOK(&b.obj, name, "B"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !op.Defined() {
		return errf(UninitializedObject, name, "operator not initialized")
	}
	an, am, bn, bm := a.nr, a.nc, b.nr, b.nc
	if desc.tran0() {
		an, am = am, an
	}
	if desc.tran1() {
		bn, bm = bm, bn
	}
	if an != bn || am != bm {
		return errf(DimensionMismatch, name, "inputs are %dx%d and %dx%d", an, am, bn, bm)
	}
	if c.nr != an || c.nc != am {
		return errf(DimensionMismatch, name, "output is %dx%d, result is %dx%d", c.nr, c.nc, an, am)
	}
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return errf(DimensionMismatch, name, "mask is %dx%d, output is %dx%d", mask.nr, mask.nc, c.nr, c.nc)
	}
	reads := maskReadsM([]*obj{&a.obj, &b.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	tran0, tran1, scmp, replace := desc.tran0(), desc.tran1(), desc.scmp(), desc.replace()
	return enqueue(name, &c.obj, reads, overwrites, func() error {
		ad := a.mdat()
		if tran0 {
			ad = a.transposed()
		}
		bd := b.mdat()
		if tran1 {
			bd = b.transposed()
		}
		t := sparse.UnionFillCSR(ad, bd, op.F, alpha, beta)
		mm := resolveMatMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		c.setData(sparse.WriteCSR(c.mdat(), t, mm, accumF, replace))
		return nil
	})
}

// EWiseUnionV computes w ⊙= union(u, alpha, v, beta, op) for vectors.
func EWiseUnionV[DC, DA, DB, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], op BinaryOp[DA, DB, DC], u *Vector[DA], alpha DA, v *Vector[DB], beta DB, desc *Descriptor) error {
	const name = "EWiseUnionV"
	if err := checkActive(name); err != nil {
		return err
	}
	if w == nil || u == nil || v == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&w.obj, name, "w"); err != nil {
		return err
	}
	if err := objOK(&u.obj, name, "u"); err != nil {
		return err
	}
	if err := objOK(&v.obj, name, "v"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !op.Defined() {
		return errf(UninitializedObject, name, "operator not initialized")
	}
	if u.n != v.n {
		return errf(DimensionMismatch, name, "inputs have sizes %d and %d", u.n, v.n)
	}
	if w.n != u.n {
		return errf(DimensionMismatch, name, "output has size %d, inputs have size %d", w.n, u.n)
	}
	if mask != nil && mask.n != w.n {
		return errf(DimensionMismatch, name, "mask has size %d, output has size %d", mask.n, w.n)
	}
	reads := maskReadsV([]*obj{&u.obj, &v.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	scmp, replace := desc.scmp(), desc.replace()
	return enqueue(name, &w.obj, reads, overwrites, func() error {
		t := sparse.VecUnionFill(u.vdat(), v.vdat(), op.F, alpha, beta)
		vm := resolveVecMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		w.setVData(sparse.WriteVec(w.vdat(), t, vm, accumF, replace))
		return nil
	})
}

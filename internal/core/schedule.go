package core

// The DAG-parallel flush path: internal/dataflow supplies the hazard-graph
// construction and the bounded worker pool; this file adapts the pending-op
// queue to it and folds the concurrent outcomes back into the context's
// sequential observable state (error log, first error, stats).
//
// Concurrency contract. The flushing goroutine holds global.mu for the whole
// flush, exactly as the sequential drain does; workers never touch the
// context. Everything a worker does is safe under the hazard edges:
//
//   - object stores and caches are guarded by the per-object mutex
//     (Matrix.mu / Vector.mu), so a reader and the independent producer of
//     some other object can overlap freely;
//   - obj.err and the snapshot/restore pair are plain state, but any two
//     operations touching the same object are ordered by a RAW/WAW/WAR edge,
//     and the scheduler's internal lock turns edge order into happens-before;
//   - format and recovery counters are package atomics;
//   - fault-plan draws are ordered by a faults.Sequencer so the injection
//     schedule stays identical to a sequential drain (see runOpAt).

import (
	stdctx "context"

	"graphblas/internal/dataflow"
	"graphblas/internal/faults"
	"graphblas/internal/obs"
	"graphblas/internal/parallel"
)

// opMetas projects the runnable queue onto the dataflow package's semantics-
// free footprint triples, preserving order (node i = nodes[i]).
func opMetas(nodes []*pendingOp) []dataflow.OpMeta {
	metas := make([]dataflow.OpMeta, len(nodes))
	for i, op := range nodes {
		reads := make([]uint64, len(op.reads))
		for j, r := range op.reads {
			reads[j] = r.id
		}
		metas[i] = dataflow.OpMeta{Out: op.out.id, Reads: reads, Overwrites: op.overwrites}
	}
	return metas
}

// runQueueDag executes the runnable operations of one flush on the dataflow
// scheduler and returns their outcomes indexed like nodes (program order).
// Caller holds c.mu and folds the results into the error log itself, so
// the observable state — SequenceErrors order, first-error selection, the
// GrB_error string — is byte-identical to a sequential drain. A non-nil ctx
// stops DAG dispatch once it is canceled: undispatched nodes are abandoned
// via cancelOp while running kernels complete. Caller guarantees
// len(nodes) > 1.
//
// Before the hazard graph is built, the fusion pass (fusion.go) may collapse
// producer-consumer pairs into fused nodes. It engages only when enabled on
// the context and when any installed fault plan is confined to the
// "fuse.kernel.*" sites: a plan that can fire anywhere else was written
// against the unfused schedule — its draws key on op names and unfused
// kernel sites — and fusing under it would change which operations fail.
// The differential fault sweeps rely on exactly this self-disabling.
func (c *context) runQueueDag(ctx stdctx.Context, nodes []*pendingOp) []error {
	metas := opMetas(nodes)
	fusedPairs := 0
	if c.fusion && (!faults.Enabled() || !faults.PlanCoversSitesOutside("fuse.")) {
		fusedPairs = planFusion(nodes, metas)
	}
	g := dataflow.Build(metas)
	if fusedPairs > 0 {
		g.NoteFused(fusedPairs)
		obs.FusedPairs.Add(int64(fusedPairs))
	}
	var gate *faults.Sequencer
	serialBody := false
	if faults.Enabled() {
		// A fault plan consumes per-site counters and a shared seeded RNG;
		// draws must happen in program order for the schedule to replay
		// identically to sequential mode. Plans that can reach inside kernel
		// bodies (dotted sites, globs) additionally force the bodies
		// themselves to run one at a time.
		gate = faults.NewSequencer(len(nodes))
		serialBody = faults.PlanCoversKernelSites()
	}
	var stop func() bool
	if ctx != nil && ctx.Done() != nil {
		stop = func() bool { return ctx.Err() != nil }
	}
	results := make([]error, len(nodes))
	rs := g.RunCancelable(parallel.MaxWorkers(), func(i int) {
		if obs.ProfilingLabels() {
			// The pprof label names the op kind while the worker executes it,
			// so CPU profiles attribute samples to MxM vs Reduce rather than
			// to an anonymous pool goroutine. Branching here (instead of
			// always calling obs.Do) keeps the disabled path free of the
			// label-closure allocation.
			obs.Do(nodes[i].name, func() { results[i] = runOpAt(nodes[i], gate, i, serialBody) })
			return
		}
		results[i] = runOpAt(nodes[i], gate, i, serialBody)
	}, stop, func(i int) {
		results[i] = cancelOp(nodes[i], gate, i, ctx.Err())
	})
	obs.ParallelFlushes.Inc()
	obs.DagNodes.Add(int64(g.Nodes()))
	obs.DagEdges.Add(int64(g.Edges()))
	obs.DagWidth.SetMax(int64(rs.MaxWidth))
	return results
}

// cancelOp abandons an operation whose flush context was canceled before the
// scheduler dispatched it. The output object is marked invalid carrying the
// Canceled error — restorable, like any failed op, by a later full overwrite
// — the span closes with OutcomeCanceled, and the op's fault-draw gate
// position is released so gated later positions are never stranded behind an
// abandoned one. The returned error takes the op's slot in the program-order
// error fold.
func cancelOp(op *pendingOp, gate *faults.Sequencer, idx int, cause error) error {
	gate.Release(idx)
	err := errf(Canceled, op.name, "abandoned before execution: %v", cause)
	op.out.err = err
	// An abandoned fused consumer never computed its fused-away
	// intermediates either: their stubs reported success, but the values
	// only ever existed inside this kernel, so they are invalidated with the
	// same restorable Canceled error.
	for _, fo := range op.fusedOuts {
		fo.err = err
	}
	obs.OpsCanceled.Inc()
	op.span.Finish(obs.OutcomeCanceled, err)
	obs.Emit(op.span)
	return err
}

package core

import (
	"runtime"
	"sync"
	"testing"

	"graphblas/internal/faults"
)

// Regression tests for three defects fixed together with the observability
// layer: scalar reduces swallowing kernel errors, Diag committing an empty
// matrix when the tuple build fails, and Resize writing dimension metadata
// without the object lock.

// seededMatrix builds a small fixed matrix whose element sum is known.
func seededMatrix(t *testing.T) (*Matrix[float64], float64) {
	t.Helper()
	m, err := NewMatrix[float64](4, 4)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if err := m.Build([]int{0, 1, 2, 3}, []int{1, 2, 3, 0}, []float64{1, 2, 3, 4}, NoAccum[float64]()); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m, 10
}

// TestScalarReduce_ExecutorFaultSurfaces: a fault drawn at the scalar
// reduce's executor site comes back as the method's error — zero result, the
// right Info code, an entry in the sequence error log — instead of being
// swallowed into a silently wrong scalar. Once the plan is exhausted the
// same call succeeds.
func TestScalarReduce_ExecutorFaultSurfaces(t *testing.T) {
	withMode(t, Blocking, func() {
		a, sum := seededMatrix(t)
		mon, err := NewMonoid(plusF64(), 0)
		if err != nil {
			t.Fatalf("NewMonoid: %v", err)
		}
		withFaults(t, 1, faults.Rule{Site: "ReduceMatrixToScalar", Kind: faults.OOM, Times: 1})
		got, err := ReduceMatrixToScalar(0, NoAccum[float64](), mon, a)
		if InfoOf(err) != OutOfMemory {
			t.Fatalf("faulted reduce: got (%v, %v) want OutOfMemory", got, err)
		}
		if got != 0 {
			t.Errorf("faulted reduce leaked a partial result: %v", got)
		}
		found := false
		for _, se := range SequenceErrors() {
			if se.Op == "ReduceMatrixToScalar" && InfoOf(se.Err) == OutOfMemory {
				found = true
			}
		}
		if !found {
			t.Errorf("error log has no ReduceMatrixToScalar entry: %+v", SequenceErrors())
		}
		if LastError() == "" {
			t.Errorf("GrB_error string not set")
		}
		got, err = ReduceMatrixToScalar(0, NoAccum[float64](), mon, a)
		if err != nil || got != sum {
			t.Fatalf("reduce after plan exhausted: got (%v, %v) want (%v, nil)", got, err, sum)
		}
	})
}

// TestScalarReduce_KernelFaultSurfaces: a fault raised inside the reduce
// kernels themselves — which panic, having value-only signatures — is
// recovered and surfaced as the method's error, for both the matrix and
// vector forms.
func TestScalarReduce_KernelFaultSurfaces(t *testing.T) {
	withMode(t, Blocking, func() {
		mon, err := NewMonoid(plusF64(), 0)
		if err != nil {
			t.Fatalf("NewMonoid: %v", err)
		}

		a, sum := seededMatrix(t)
		withFaults(t, 1, faults.Rule{Site: "sparse.kernel.reduce.all", Kind: faults.KernelErr, Times: 1})
		got, err := ReduceMatrixToScalar(0, NoAccum[float64](), mon, a)
		if InfoOf(err) != PanicInfo || got != 0 {
			t.Fatalf("matrix kernel fault: got (%v, %v) want (0, PanicInfo)", got, err)
		}
		if got, err = ReduceMatrixToScalar(0, NoAccum[float64](), mon, a); err != nil || got != sum {
			t.Fatalf("matrix reduce after fault: got (%v, %v) want (%v, nil)", got, err, sum)
		}

		u, uerr := NewVector[float64](4)
		if uerr != nil {
			t.Fatalf("NewVector: %v", uerr)
		}
		if err := u.Build([]int{0, 2}, []float64{5, 7}, NoAccum[float64]()); err != nil {
			t.Fatalf("Build: %v", err)
		}
		withFaults(t, 1, faults.Rule{Site: "sparse.kernel.reduce.vec", Kind: faults.KernelErr, Times: 1})
		vgot, err := ReduceVectorToScalar(0, NoAccum[float64](), mon, u)
		if InfoOf(err) != PanicInfo || vgot != 0 {
			t.Fatalf("vector kernel fault: got (%v, %v) want (0, PanicInfo)", vgot, err)
		}
		if vgot, err = ReduceVectorToScalar(0, NoAccum[float64](), mon, u); err != nil || vgot != 12 {
			t.Fatalf("vector reduce after fault: got (%v, %v) want (12, nil)", vgot, err)
		}
	})
}

// TestScalarReduce_PanicOperatorSurfaces: a panicking user monoid takes the
// recovery path rather than crashing the program, and the sequence error log
// records it.
func TestScalarReduce_PanicOperatorSurfaces(t *testing.T) {
	withMode(t, Blocking, func() {
		a, _ := seededMatrix(t)
		bad := BinaryOp[float64, float64, float64]{Name: "bad", F: func(x, y float64) float64 {
			panic("operator exploded")
		}}
		mon, err := NewMonoid(bad, 0)
		if err != nil {
			t.Fatalf("NewMonoid: %v", err)
		}
		got, err := ReduceMatrixToScalar(0, NoAccum[float64](), mon, a)
		if InfoOf(err) != PanicInfo || got != 0 {
			t.Fatalf("panicking monoid: got (%v, %v) want (0, PanicInfo)", got, err)
		}
	})
}

// TestDiag_FaultSurfaces: a fault injected at Diag's executor site fails the
// call instead of handing back an empty-but-valid diagonal matrix, and the
// failure is logged; a clean retry produces the right diagonal.
func TestDiag_FaultSurfaces(t *testing.T) {
	withMode(t, Blocking, func() {
		u, err := NewVector[float64](3)
		if err != nil {
			t.Fatalf("NewVector: %v", err)
		}
		if err := u.Build([]int{0, 1, 2}, []float64{1, 2, 3}, NoAccum[float64]()); err != nil {
			t.Fatalf("Build: %v", err)
		}
		withFaults(t, 1, faults.Rule{Site: "Diag", Kind: faults.OOM, Times: 1})
		if _, err := Diag(u, 0); InfoOf(err) != OutOfMemory {
			t.Fatalf("faulted Diag: got %v want OutOfMemory", err)
		}
		found := false
		for _, se := range SequenceErrors() {
			if se.Op == "Diag" {
				found = true
			}
		}
		if !found {
			t.Errorf("error log has no Diag entry: %+v", SequenceErrors())
		}
		m, err := Diag(u, 1)
		if err != nil {
			t.Fatalf("Diag after plan exhausted: %v", err)
		}
		got := denseOf(t, m)
		equalDense(t, got, dmat{{0, 1}: 1, {1, 2}: 2, {2, 3}: 3}, "diagonal")
	})
}

// TestResizeDuringFlushRace: one goroutine keeps deferring Clear operations
// and flushing them — so their closures read the dimensions on flush workers
// — while the test goroutine Resizes the same objects. Before the fix the
// eager metadata write was unlocked and the race detector flagged it; the
// test runs under every scheduler the engine has.
func TestResizeDuringFlushRace(t *testing.T) {
	cases := []struct {
		name  string
		mode  Mode
		sched Scheduler
	}{
		{"Blocking", Blocking, SchedSequential},
		{"NonBlockingSequential", NonBlocking, SchedSequential},
		{"NonBlockingDag", NonBlocking, SchedDag},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Oversubscribe a small machine so the flusher and the resizer
			// genuinely interleave; the race window is the unlocked metadata
			// write against a flush worker's dims read.
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
			withMode(t, tc.mode, func() {
				prevSched := SetScheduler(tc.sched)
				defer SetScheduler(prevSched)
				// Keep every deferred Clear alive: with elision on,
				// back-to-back Clears are dead stores and their closures — the
				// racing dims readers — would never run.
				prevElide := SetElision(false)
				defer SetElision(prevElide)
				m, err := NewMatrix[float64](32, 32)
				if err != nil {
					t.Fatalf("NewMatrix: %v", err)
				}
				v, err := NewVector[float64](32)
				if err != nil {
					t.Fatalf("NewVector: %v", err)
				}
				// In nonblocking mode the flusher clears the same objects the
				// main goroutine resizes: the Clear closures run on flush
				// workers and read the dimensions there — the engine-internal
				// race the fix closes. Blocking mode has no flush workers and
				// the API permits cross-goroutine sharing only for read-only
				// objects, so there the flusher drives its own objects and the
				// test exercises concurrent inline execution of the engine's
				// shared state instead.
				cm, cv := m, v
				if tc.mode == Blocking {
					cm, _ = NewMatrix[float64](32, 32)
					cv, _ = NewVector[float64](32)
				}
				const resizes = 2000
				var wg sync.WaitGroup
				wg.Add(1)
				done := make(chan struct{})
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						for i := 0; i < 32; i++ {
							_ = cm.Clear()
							_ = cv.Clear()
						}
						_ = Wait()
					}
				}()
				for i := 0; i < resizes; i++ {
					n := 16 + i%17
					if err := m.Resize(n, n); err != nil {
						t.Errorf("Matrix.Resize: %v", err)
					}
					if err := v.Resize(n); err != nil {
						t.Errorf("Vector.Resize: %v", err)
					}
				}
				close(done)
				wg.Wait()
				if err := Wait(); err != nil {
					t.Fatalf("final Wait: %v", err)
				}
				// Metadata must reflect the last Resize on this goroutine.
				nr, _ := m.NRows()
				nc, _ := m.NCols()
				sz, _ := v.Size()
				want := 16 + (resizes-1)%17
				if nr != want || nc != want || sz != want {
					t.Errorf("final dims: matrix %dx%d, vector %d, want %d", nr, nc, sz, want)
				}
			})
		})
	}
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixExportImportRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr, nc := 1+rng.Intn(15), 1+rng.Intn(15)
		m, md := newTestMatrix(t, rng, nr, nc, 0.4)
		ptr, col, vals, err := MatrixExportCSR(m)
		if err != nil {
			return false
		}
		back, err := MatrixImportCSR(nr, nc, ptr, col, vals)
		if err != nil {
			return false
		}
		got := denseOf(t, back)
		if len(got) != len(md) {
			return false
		}
		for k, v := range md {
			if got[k] != v {
				return false
			}
		}
		// The exported slices are copies: mutating them must not corrupt m.
		for i := range vals {
			vals[i] = -999
		}
		for i := range col {
			col[i] = 0
		}
		got = denseOf(t, m)
		for k, v := range md {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixImportValidation(t *testing.T) {
	cases := []struct {
		name   string
		nr, nc int
		ptr    []int
		col    []int
		vals   []float64
		info   Info
	}{
		{"bad dims", 0, 3, []int{0}, nil, nil, InvalidValue},
		{"short ptr", 2, 2, []int{0, 1}, []int{0}, []float64{1}, InvalidValue},
		{"ptr not starting at 0", 1, 2, []int{1, 1}, []int{}, []float64{}, InvalidValue},
		{"decreasing ptr", 2, 2, []int{0, 2, 1}, []int{0, 1}, []float64{1, 2}, InvalidValue},
		{"col out of range", 1, 2, []int{0, 1}, []int{5}, []float64{1}, InvalidIndex},
		{"unsorted cols", 1, 3, []int{0, 2}, []int{2, 1}, []float64{1, 2}, InvalidValue},
		{"length mismatch", 1, 3, []int{0, 2}, []int{0, 1}, []float64{1}, InvalidValue},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := MatrixImportCSR(c.nr, c.nc, c.ptr, c.col, c.vals); InfoOf(err) != c.info {
				t.Fatalf("got %v want %v", err, c.info)
			}
		})
	}
	// A valid import succeeds.
	m, err := MatrixImportCSR(2, 3, []int{0, 2, 3}, []int{0, 2, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("valid import: %v", err)
	}
	if v, _ := m.ExtractElement(1, 1); v != 3 {
		t.Fatalf("imported value %v", v)
	}
}

func TestVectorExportImport(t *testing.T) {
	v, _ := NewVector[float64](9)
	_ = v.SetElement(1.5, 2)
	_ = v.SetElement(2.5, 7)
	idx, vals, err := VectorExport(v)
	if err != nil {
		t.Fatal(err)
	}
	back, err := VectorImport(9, idx, vals)
	if err != nil {
		t.Fatal(err)
	}
	if x, _ := back.ExtractElement(7); x != 2.5 {
		t.Fatalf("roundtrip %v", x)
	}
	if _, err := VectorImport(9, []int{3, 3}, []float64{1, 2}); InfoOf(err) != InvalidValue {
		t.Fatalf("duplicate indices accepted: %v", err)
	}
	if _, err := VectorImport(9, []int{9}, []float64{1}); InfoOf(err) != InvalidIndex {
		t.Fatalf("out of range accepted: %v", err)
	}
	if _, err := VectorImport(9, []int{5, 2}, []float64{1, 2}); InfoOf(err) != InvalidValue {
		t.Fatalf("unsorted accepted: %v", err)
	}
}

package core

import (
	stdctx "context"
	"runtime"
	"testing"
	"time"
)

// TestWaitContext_PreCanceled: a flush entered with an already-canceled
// context abandons every deferred operation. Each output is marked invalid
// with a Canceled error, the sequence log records them in program order, and
// a later full overwrite rehabilitates the objects — identical recovery
// semantics to a kernel failure.
func TestWaitContext_PreCanceled(t *testing.T) {
	for _, sched := range []struct {
		name string
		s    Scheduler
	}{{"Sequential", SchedSequential}, {"Dag", SchedDag}} {
		t.Run(sched.name, func(t *testing.T) {
			withMode(t, NonBlocking, func() {
				prev := SetScheduler(sched.s)
				defer SetScheduler(prev)
				s := plusTimesF64(t)
				a, _ := NewMatrix[float64](2, 2)
				_ = a.Build([]int{0, 1}, []int{1, 0}, []float64{2, 3}, NoAccum[float64]())
				c1, _ := NewMatrix[float64](2, 2)
				c2, _ := NewMatrix[float64](2, 2)
				if err := MxM(c1, NoMask, NoAccum[float64](), s, a, a, nil); err != nil {
					t.Fatalf("MxM c1: %v", err)
				}
				if err := MxM(c2, NoMask, NoAccum[float64](), s, a, a, nil); err != nil {
					t.Fatalf("MxM c2: %v", err)
				}
				ctx, cancel := stdctx.WithCancel(stdctx.Background())
				cancel()
				err := WaitContext(ctx)
				if InfoOf(err) != Canceled {
					t.Fatalf("WaitContext on canceled ctx: got %v want Canceled", err)
				}
				// Both ops were abandoned; both entries are in the log.
				log := SequenceErrors()
				if len(log) != 2 {
					t.Fatalf("SequenceErrors: got %d entries want 2: %v", len(log), log)
				}
				for _, e := range log {
					if InfoOf(e.Err) != Canceled {
						t.Fatalf("log entry not Canceled: %v", e.Err)
					}
				}
				if _, err := c1.NVals(); InfoOf(err) != InvalidObject {
					t.Fatalf("canceled output readable: %v", err)
				}
				// Full overwrite rehabilitates, and a plain Wait still works.
				if err := Transpose(c1, NoMask, NoAccum[float64](), a, nil); err != nil {
					t.Fatalf("Transpose: %v", err)
				}
				if err := Transpose(c2, NoMask, NoAccum[float64](), a, nil); err != nil {
					t.Fatalf("Transpose: %v", err)
				}
				if err := Wait(); err != nil {
					t.Fatalf("Wait after rehabilitation: %v", err)
				}
				if nv, err := c1.NVals(); err != nil || nv != 2 {
					t.Fatalf("rehabilitated c1: nv=%d err=%v", nv, err)
				}
			})
		})
	}
}

// TestWaitContext_DeadlineMidFlush: a deadline expiring while an operation's
// kernel is running lets that kernel finish (cancellation stops dispatch, it
// never interrupts execution) and abandons the dependent operation behind it.
func TestWaitContext_DeadlineMidFlush(t *testing.T) {
	for _, sched := range []struct {
		name string
		s    Scheduler
	}{{"Sequential", SchedSequential}, {"Dag", SchedDag}} {
		t.Run(sched.name, func(t *testing.T) {
			withMode(t, NonBlocking, func() {
				prev := SetScheduler(sched.s)
				defer SetScheduler(prev)
				s := plusTimesF64(t)
				slow := UnaryOp[float64, float64]{Name: "slow", F: func(x float64) float64 {
					time.Sleep(5 * time.Millisecond)
					return x
				}}
				a, _ := NewMatrix[float64](2, 2)
				_ = a.Build([]int{0, 1}, []int{1, 0}, []float64{2, 3}, NoAccum[float64]())
				c1, _ := NewMatrix[float64](2, 2)
				c2, _ := NewMatrix[float64](2, 2)
				if err := ApplyM(c1, NoMask, NoAccum[float64](), slow, a, nil); err != nil {
					t.Fatalf("ApplyM: %v", err)
				}
				// c2 reads c1: the RAW edge keeps it undispatched until the
				// slow kernel — and with it the deadline — has passed.
				if err := MxM(c2, NoMask, NoAccum[float64](), s, c1, a, nil); err != nil {
					t.Fatalf("MxM: %v", err)
				}
				ctx, cancel := stdctx.WithTimeout(stdctx.Background(), time.Millisecond)
				defer cancel()
				err := WaitContext(ctx)
				if InfoOf(err) != Canceled {
					t.Fatalf("WaitContext past deadline: got %v want Canceled", err)
				}
				// The op that was already running committed its result.
				if nv, err := c1.NVals(); err != nil || nv != 2 {
					t.Fatalf("completed op not committed: nv=%d err=%v", nv, err)
				}
				// The dependent behind the deadline was abandoned.
				if _, err := c2.NVals(); InfoOf(err) != InvalidObject {
					t.Fatalf("abandoned dependent readable: %v", err)
				}
			})
		})
	}
}

// TestWaitContext_NilAndUnexpired: WaitContext with a nil context, or one
// whose deadline never fires, is observably identical to Wait.
func TestWaitContext_NilAndUnexpired(t *testing.T) {
	withMode(t, NonBlocking, func() {
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](2, 2)
		_ = a.Build([]int{0, 1}, []int{1, 0}, []float64{2, 3}, NoAccum[float64]())
		c, _ := NewMatrix[float64](2, 2)
		if err := MxM(c, NoMask, NoAccum[float64](), s, a, a, nil); err != nil {
			t.Fatalf("MxM: %v", err)
		}
		if err := WaitContext(nil); err != nil {
			t.Fatalf("WaitContext(nil): %v", err)
		}
		want := dmat{{0, 0}: 6, {1, 1}: 6}
		equalDense(t, denseOf(t, c), want, "nil ctx")

		d, _ := NewMatrix[float64](2, 2)
		if err := MxM(d, NoMask, NoAccum[float64](), s, a, a, nil); err != nil {
			t.Fatalf("MxM: %v", err)
		}
		ctx, cancel := stdctx.WithTimeout(stdctx.Background(), time.Minute)
		defer cancel()
		if err := WaitContext(ctx); err != nil {
			t.Fatalf("WaitContext(live): %v", err)
		}
		equalDense(t, denseOf(t, d), want, "live ctx")
	})
}

// TestWaitContext_DagStopsDispatchUnderWidth: with real parallelism, a
// canceled context must drain a wide DAG flush without executing undispatched
// nodes and without deadlocking the worker pool.
func TestWaitContext_DagStopsDispatchUnderWidth(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs GOMAXPROCS >= 2 for a DAG flush")
	}
	withMode(t, NonBlocking, func() {
		prev := SetScheduler(SchedDag)
		defer SetScheduler(prev)
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](4, 4)
		_ = a.Build([]int{0, 1, 2, 3}, []int{1, 2, 3, 0}, []float64{1, 1, 1, 1}, NoAccum[float64]())
		outs := make([]*Matrix[float64], 16)
		for i := range outs {
			outs[i], _ = NewMatrix[float64](4, 4)
			if err := MxM(outs[i], NoMask, NoAccum[float64](), s, a, a, nil); err != nil {
				t.Fatalf("MxM %d: %v", i, err)
			}
		}
		ctx, cancel := stdctx.WithCancel(stdctx.Background())
		cancel()
		done := make(chan error, 1)
		go func() { done <- WaitContext(ctx) }()
		select {
		case err := <-done:
			if InfoOf(err) != Canceled {
				t.Fatalf("wide canceled flush: got %v want Canceled", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("canceled DAG flush did not drain")
		}
	})
}

// TestRevalidate_AcceptsRolledBackContent: Revalidate is the alternative to
// full-overwrite rehabilitation for callers whose mutations are idempotent.
// After an abandoned flush the object still holds its prior committed
// content; Revalidate clears the invalid mark, the caller re-issues the
// dropped mutation, and reads resume with no intervening overwrite.
func TestRevalidate_AcceptsRolledBackContent(t *testing.T) {
	withMode(t, NonBlocking, func() {
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](2, 2)
		_ = a.Build([]int{0, 1}, []int{1, 0}, []float64{2, 3}, NoAccum[float64]())
		c, _ := NewMatrix[float64](2, 2)
		if err := MxM(c, NoMask, NoAccum[float64](), s, a, a, nil); err != nil {
			t.Fatalf("MxM warm: %v", err)
		}
		if err := Wait(); err != nil {
			t.Fatalf("Wait warm: %v", err)
		}
		want := denseOf(t, c)

		// Abandon a second MxM into c mid-queue: c goes invalid, but its
		// committed content is untouched (the op never ran).
		if err := MxM(c, NoMask, NoAccum[float64](), s, a, c, nil); err != nil {
			t.Fatalf("MxM enqueue: %v", err)
		}
		ctx, cancel := stdctx.WithCancel(stdctx.Background())
		cancel()
		if err := WaitContext(ctx); InfoOf(err) != Canceled {
			t.Fatalf("WaitContext: got %v want Canceled", err)
		}
		if _, err := c.NVals(); InfoOf(err) != InvalidObject {
			t.Fatalf("abandoned output readable: %v", err)
		}

		if err := c.Revalidate(); err != nil {
			t.Fatalf("Revalidate: %v", err)
		}
		got := denseOf(t, c)
		if len(got) != len(want) {
			t.Fatalf("revalidated content diverged: got %v want %v", got, want)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("revalidated content diverged at %v: got %v want %v", k, got[k], v)
			}
		}
		// The object is a first-class citizen again: merge-mode ops accept it.
		if err := MxM(c, NoMask, NoAccum[float64](), s, a, c, nil); err != nil {
			t.Fatalf("MxM after revalidate: %v", err)
		}
		if err := Wait(); err != nil {
			t.Fatalf("Wait after revalidate: %v", err)
		}
	})
}

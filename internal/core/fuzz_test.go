package core

import (
	"bytes"
	"testing"
)

// FuzzMatrixDeserialize feeds arbitrary bytes to the deserializer: it must
// either return a structurally valid matrix or a clean GraphBLAS error —
// never panic and never produce an object violating the CSR invariants.
func FuzzMatrixDeserialize(f *testing.F) {
	// Seed with a valid stream and a few mutations.
	m, _ := NewMatrix[float64](3, 4)
	_ = m.SetElement(1.5, 0, 1)
	_ = m.SetElement(-2, 2, 3)
	var buf bytes.Buffer
	_ = MatrixSerialize(m, &buf)
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{0, 4, 12, len(valid) / 2} {
		f.Add(valid[:cut])
	}
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 20 {
		mutated[20] ^= 0xff
	}
	f.Add(mutated)
	f.Add([]byte("GRB1 garbage follows the magic"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := MatrixDeserialize[float64](bytes.NewReader(data))
		if err != nil {
			if got != nil {
				t.Fatal("error with non-nil matrix")
			}
			return
		}
		// Whatever parsed must satisfy the public contract.
		nr, err := got.NRows()
		if err != nil || nr <= 0 {
			t.Fatalf("invalid rows %d %v", nr, err)
		}
		nc, _ := got.NCols()
		is, js, _, err := got.ExtractTuples()
		if err != nil {
			t.Fatalf("ExtractTuples on parsed matrix: %v", err)
		}
		for k := range is {
			if is[k] < 0 || is[k] >= nr || js[k] < 0 || js[k] >= nc {
				t.Fatalf("entry (%d,%d) outside %dx%d", is[k], js[k], nr, nc)
			}
		}
	})
}

// FuzzVectorDeserialize mirrors FuzzMatrixDeserialize for vectors.
func FuzzVectorDeserialize(f *testing.F) {
	v, _ := NewVector[int32](5)
	_ = v.SetElement(9, 2)
	var buf bytes.Buffer
	_ = VectorSerialize(v, &buf)
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := VectorDeserialize[int32](bytes.NewReader(data))
		if err != nil {
			return
		}
		n, err := got.Size()
		if err != nil || n <= 0 {
			t.Fatalf("invalid size %d %v", n, err)
		}
		idx, _, err := got.ExtractTuples()
		if err != nil {
			t.Fatalf("ExtractTuples: %v", err)
		}
		for k, i := range idx {
			if i < 0 || i >= n {
				t.Fatalf("index %d outside %d", i, n)
			}
			if k > 0 && idx[k-1] >= i {
				t.Fatalf("unsorted parsed vector")
			}
		}
	})
}

// FuzzBuildRejectsBadTuples: Build must reject any out-of-range input with
// a clean error and must never corrupt the (empty) target object.
func FuzzBuildRejectsBadTuples(f *testing.F) {
	f.Add(5, 5, []byte{1, 2, 3}, []byte{3, 2, 1})
	f.Add(3, 4, []byte{0, 200}, []byte{1, 1})
	f.Fuzz(func(t *testing.T, nr, nc int, rowBytes, colBytes []byte) {
		if nr <= 0 || nc <= 0 || nr > 64 || nc > 64 {
			return
		}
		k := len(rowBytes)
		if len(colBytes) < k {
			k = len(colBytes)
		}
		rows := make([]int, k)
		cols := make([]int, k)
		vals := make([]float64, k)
		inRange := true
		for i := 0; i < k; i++ {
			rows[i] = int(rowBytes[i]) - 4 // may go negative / out of range
			cols[i] = int(colBytes[i]) - 4
			vals[i] = float64(i)
			if rows[i] < 0 || rows[i] >= nr || cols[i] < 0 || cols[i] >= nc {
				inRange = false
			}
		}
		m, err := NewMatrix[float64](nr, nc)
		if err != nil {
			t.Fatal(err)
		}
		err = m.Build(rows, cols, vals, plusF64())
		if !inRange {
			if InfoOf(err) != InvalidIndex {
				t.Fatalf("out-of-range build: %v", err)
			}
			if nv, _ := m.NVals(); nv != 0 {
				t.Fatalf("failed build left %d entries", nv)
			}
			return
		}
		if err != nil {
			t.Fatalf("in-range build failed: %v", err)
		}
		// Entry count is the number of distinct coordinates.
		seen := map[[2]int]bool{}
		for i := 0; i < k; i++ {
			seen[[2]int{rows[i], cols[i]}] = true
		}
		if nv, _ := m.NVals(); nv != len(seen) {
			t.Fatalf("nvals %d want %d", nv, len(seen))
		}
	})
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEWiseUnionVector(t *testing.T) {
	u := vecOf(t, 5, map[int]float64{0: 10, 2: 30})
	v := vecOf(t, 5, map[int]float64{2: 3, 4: 5})
	w, _ := NewVector[float64](5)
	minus := BinaryOp[float64, float64, float64]{Name: "minus", F: func(x, y float64) float64 { return x - y }}
	// w = u .- v over the union with zero fills.
	if err := EWiseUnionV(w, NoMaskV, NoAccum[float64](), minus, u, 0, v, 0, nil); err != nil {
		t.Fatal(err)
	}
	wantVec(t, w, map[int]float64{0: 10, 2: 27, 4: -5}, "union minus")

	// Mixed domains: bool presence vs float values, with sentinel fills.
	flags, _ := NewVector[bool](5)
	_ = flags.SetElement(true, 0)
	_ = flags.SetElement(true, 3)
	pick := BinaryOp[bool, float64, float64]{Name: "pick", F: func(b bool, x float64) float64 {
		if b {
			return x
		}
		return -x
	}}
	out, _ := NewVector[float64](5)
	if err := EWiseUnionV(out, NoMaskV, NoAccum[float64](), pick, flags, false, u, 99, nil); err != nil {
		t.Fatal(err)
	}
	// positions: 0 (both: true,10 → 10), 2 (only u: false-fill → -30),
	// 3 (only flags: beta 99 → 99).
	wantVec(t, out, map[int]float64{0: 10, 2: -30, 3: 99}, "mixed-domain union")
}

// Property: with both fills at the operator's neutral value, eWiseUnion
// with Plus equals eWiseAdd.
func TestQuickEWiseUnionMatchesAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, _ := newTestMatrix(t, rng, 8, 8, 0.4)
		b, _ := newTestMatrix(t, rng, 8, 8, 0.4)
		c1, _ := NewMatrix[float64](8, 8)
		c2, _ := NewMatrix[float64](8, 8)
		if err := EWiseUnionM(c1, NoMask, NoAccum[float64](), plusF64(), a, 0, b, 0, nil); err != nil {
			return false
		}
		if err := EWiseAddM(c2, NoMask, NoAccum[float64](), plusF64(), a, b, nil); err != nil {
			return false
		}
		g1 := denseOf(t, c1)
		g2 := denseOf(t, c2)
		if len(g1) != len(g2) {
			return false
		}
		for k, v := range g2 {
			if g1[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEWiseUnionMatrixWithMaskAndTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	a, ad := newTestMatrix(t, rng, 6, 5, 0.4)
	b, bd := newTestMatrix(t, rng, 5, 6, 0.4)
	minus := BinaryOp[float64, float64, float64]{Name: "minus", F: func(x, y float64) float64 { return x - y }}
	c, _ := NewMatrix[float64](6, 5)
	if err := EWiseUnionM(c, NoMask, NoAccum[float64](), minus, a, 0, b, 0, Desc().Transpose1()); err != nil {
		t.Fatal(err)
	}
	want := dmat{}
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			av, aok := ad[key{i, j}]
			bv, bok := bd[key{j, i}]
			if aok || bok {
				want[key{i, j}] = av - bv
			}
		}
	}
	equalDense(t, denseOf(t, c), want, "union minus tran1")
	// Error paths.
	bad, _ := NewMatrix[float64](2, 2)
	if err := EWiseUnionM(c, NoMask, NoAccum[float64](), minus, a, 0, bad, 0, nil); InfoOf(err) != DimensionMismatch {
		t.Fatalf("dim mismatch: %v", err)
	}
	if err := EWiseUnionM(c, NoMask, NoAccum[float64](), BinaryOp[float64, float64, float64]{}, a, 0, b, 0, Desc().Transpose1()); InfoOf(err) != UninitializedObject {
		t.Fatalf("undefined op: %v", err)
	}
}

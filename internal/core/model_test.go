package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// Model-based testing: long random operation sequences run both through the
// library and through a straightforward dense interpreter; after every step
// all objects must agree. This exercises interactions no single-op sweep
// reaches — output/input aliasing, pending point updates interleaved with
// operations, mask objects that are also operands, and (in nonblocking
// mode) the deferred-execution engine under all of it.

// modelState pairs each Matrix with its dense model.
type modelState struct {
	mats   []*Matrix[float64]
	models []dmat
	n      int
}

func newModelState(t *testing.T, rng *rand.Rand, count, n int) *modelState {
	st := &modelState{n: n}
	for k := 0; k < count; k++ {
		m, d := newTestMatrix(t, rng, n, n, 0.25)
		st.mats = append(st.mats, m)
		st.models = append(st.models, d)
	}
	return st
}

// applyMaskWrite runs the shared dense write pipeline with matrix mask km
// (stored/eff models) applied.
func applyMaskWrite(c, t dmat, n int, stored, eff map[key]bool, useMask, scmp, accum, replace bool) dmat {
	return oracleWrite(c, t, n, n, stored, eff, useMask, scmp, accum, replace)
}

func (st *modelState) maskModels(mi int) (stored, eff map[key]bool) {
	stored = map[key]bool{}
	eff = map[key]bool{}
	for k, v := range st.models[mi] {
		stored[k] = true
		if v != 0 { // float truthiness matches the library's rule
			eff[k] = true
		}
	}
	return stored, eff
}

func TestModelBasedRandomSequences(t *testing.T) {
	for _, mode := range []Mode{Blocking, NonBlocking} {
		t.Run(mode.String(), func(t *testing.T) {
			withMode(t, mode, func() {
				for seed := int64(0); seed < 6; seed++ {
					runModelSequence(t, seed, 40)
				}
			})
		})
	}
}

func runModelSequence(t *testing.T, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n = 7
	st := newModelState(t, rng, 4, n)
	s := plusTimesF64(t)
	neg := UnaryOp[float64, float64]{Name: "neg", F: func(x float64) float64 { return -x }}

	for step := 0; step < steps; step++ {
		ci := rng.Intn(len(st.mats))
		ai := rng.Intn(len(st.mats))
		bi := rng.Intn(len(st.mats))
		useMask := rng.Intn(3) == 0
		mi := rng.Intn(len(st.mats))
		scmp := useMask && rng.Intn(2) == 0
		accum := rng.Intn(3) == 0
		replace := rng.Intn(2) == 0
		desc := &Descriptor{}
		if scmp {
			desc.CompMask()
		}
		if replace {
			desc.ReplaceOutput()
		}
		acc := NoAccum[float64]()
		if accum {
			acc = plusF64()
		}
		var mk *Matrix[float64]
		if useMask {
			mk = st.mats[mi]
		}
		stored, eff := st.maskModels(mi)
		label := fmt.Sprintf("seed %d step %d", seed, step)

		switch op := rng.Intn(6); op {
		case 0: // mxm
			if err := MxM(st.mats[ci], mk, acc, s, st.mats[ai], st.mats[bi], desc); err != nil {
				t.Fatalf("%s MxM: %v", label, err)
			}
			tm := dmat{}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					sum, has := 0.0, false
					for k := 0; k < n; k++ {
						av, ok1 := st.models[ai][key{i, k}]
						bv, ok2 := st.models[bi][key{k, j}]
						if ok1 && ok2 {
							sum += av * bv
							has = true
						}
					}
					if has {
						tm[key{i, j}] = sum
					}
				}
			}
			st.models[ci] = applyMaskWrite(st.models[ci], tm, n, stored, eff, useMask, scmp, accum, replace)
		case 1: // eWiseAdd
			if err := EWiseAddM(st.mats[ci], mk, acc, plusF64(), st.mats[ai], st.mats[bi], desc); err != nil {
				t.Fatalf("%s EWiseAdd: %v", label, err)
			}
			tm := dmat{}
			for k, v := range st.models[ai] {
				tm[k] = v
			}
			for k, v := range st.models[bi] {
				if cv, ok := tm[k]; ok {
					tm[k] = cv + v
				} else {
					tm[k] = v
				}
			}
			st.models[ci] = applyMaskWrite(st.models[ci], tm, n, stored, eff, useMask, scmp, accum, replace)
		case 2: // apply(neg)
			if err := ApplyM(st.mats[ci], mk, acc, neg, st.mats[ai], desc); err != nil {
				t.Fatalf("%s Apply: %v", label, err)
			}
			tm := dmat{}
			for k, v := range st.models[ai] {
				tm[k] = -v
			}
			st.models[ci] = applyMaskWrite(st.models[ci], tm, n, stored, eff, useMask, scmp, accum, replace)
		case 3: // transpose
			if err := Transpose(st.mats[ci], mk, acc, st.mats[ai], desc); err != nil {
				t.Fatalf("%s Transpose: %v", label, err)
			}
			tm := dmat{}
			for k, v := range st.models[ai] {
				tm[key{k.j, k.i}] = v
			}
			st.models[ci] = applyMaskWrite(st.models[ci], tm, n, stored, eff, useMask, scmp, accum, replace)
		case 4: // point updates (SetElement / RemoveElement bursts)
			for b := 0; b < 5; b++ {
				i, j := rng.Intn(n), rng.Intn(n)
				if rng.Intn(4) == 0 {
					if err := st.mats[ci].RemoveElement(i, j); err != nil {
						t.Fatalf("%s Remove: %v", label, err)
					}
					delete(st.models[ci], key{i, j})
				} else {
					x := float64(rng.Intn(9) + 1)
					if err := st.mats[ci].SetElement(x, i, j); err != nil {
						t.Fatalf("%s Set: %v", label, err)
					}
					st.models[ci][key{i, j}] = x
				}
			}
		case 5: // scalar region assign
			rows := []int{rng.Intn(n), (rng.Intn(n-1) + 1 + rng.Intn(n)) % n}
			if rows[0] == rows[1] {
				rows = rows[:1]
			}
			x := float64(rng.Intn(5) + 1)
			if err := AssignMatrixScalar(st.mats[ci], mk, acc, x, rows, All, desc); err != nil {
				t.Fatalf("%s AssignScalar: %v", label, err)
			}
			z := dmat{}
			for k, v := range st.models[ci] {
				z[k] = v
			}
			for _, i := range rows {
				for j := 0; j < n; j++ {
					k := key{i, j}
					if accum {
						if cv, ok := z[k]; ok {
							z[k] = cv + x
							continue
						}
					}
					z[k] = x
				}
			}
			out := dmat{}
			allow := func(k key) bool {
				if !useMask {
					return true
				}
				if scmp {
					return !stored[k]
				}
				return eff[k]
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					k := key{i, j}
					if allow(k) {
						if v, ok := z[k]; ok {
							out[k] = v
						}
					} else if !replace {
						if v, ok := st.models[ci][k]; ok {
							out[k] = v
						}
					}
				}
			}
			st.models[ci] = out
		}

		// Compare every object after every step (forces the queue, which
		// also stresses force/requeue transitions in nonblocking mode).
		for k := range st.mats {
			got := denseOf(t, st.mats[k])
			want := st.models[k]
			if len(got) != len(want) {
				t.Fatalf("%s: object %d nvals %d want %d", label, k, len(got), len(want))
			}
			for kk, v := range want {
				if got[kk] != v {
					t.Fatalf("%s: object %d (%d,%d) got %v want %v", label, k, kk.i, kk.j, got[kk], v)
				}
			}
		}
	}
}

// TestModelBasedVectorSequences mirrors the matrix model test for the
// vector operations, comparing only every few steps so the nonblocking
// queue actually accumulates depth between checks.
func TestModelBasedVectorSequences(t *testing.T) {
	for _, mode := range []Mode{Blocking, NonBlocking} {
		t.Run(mode.String(), func(t *testing.T) {
			withMode(t, mode, func() {
				for seed := int64(0); seed < 6; seed++ {
					runVectorModelSequence(t, seed, 60)
				}
			})
		})
	}
}

func runVectorModelSequence(t *testing.T, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n = 9
	var vecs []*Vector[float64]
	var models []map[int]float64
	for k := 0; k < 4; k++ {
		v, m := randVecModel(t, rng, n, 0.35)
		vecs = append(vecs, v)
		models = append(models, m)
	}
	a, ad := newTestMatrix(t, rng, n, n, 0.3)
	s := plusTimesF64(t)
	neg := UnaryOp[float64, float64]{Name: "neg", F: func(x float64) float64 { return -x }}

	maskModels := func(mi int) (stored, eff map[int]bool) {
		stored = map[int]bool{}
		eff = map[int]bool{}
		for i, v := range models[mi] {
			stored[i] = true
			if v != 0 {
				eff[i] = true
			}
		}
		return
	}
	copyModel := func(m map[int]float64) map[int]float64 {
		out := map[int]float64{}
		for k, v := range m {
			out[k] = v
		}
		return out
	}

	for step := 0; step < steps; step++ {
		wi := rng.Intn(len(vecs))
		ui := rng.Intn(len(vecs))
		vi := rng.Intn(len(vecs))
		useMask := rng.Intn(3) == 0
		mi := rng.Intn(len(vecs))
		scmp := useMask && rng.Intn(2) == 0
		accum := rng.Intn(3) == 0
		replace := rng.Intn(2) == 0
		desc := sweepDesc(scmp, replace)
		acc := NoAccum[float64]()
		if accum {
			acc = plusF64()
		}
		var mk *Vector[float64]
		if useMask {
			mk = vecs[mi]
		}
		stored, eff := maskModels(mi)
		label := fmt.Sprintf("vec seed %d step %d", seed, step)

		switch rng.Intn(5) {
		case 0: // vxm
			if err := VxM(vecs[wi], mk, acc, s, vecs[ui], a, desc); err != nil {
				t.Fatalf("%s VxM: %v", label, err)
			}
			tm := map[int]float64{}
			for j := 0; j < n; j++ {
				sum, has := 0.0, false
				for k := 0; k < n; k++ {
					uv, ok1 := models[ui][k]
					av, ok2 := ad[key{k, j}]
					if ok1 && ok2 {
						sum += uv * av
						has = true
					}
				}
				if has {
					tm[j] = sum
				}
			}
			models[wi] = vecOracleWrite(models[wi], tm, n, stored, eff, useMask, scmp, accum, replace)
		case 1: // eWiseAdd
			if err := EWiseAddV(vecs[wi], mk, acc, plusF64(), vecs[ui], vecs[vi], desc); err != nil {
				t.Fatalf("%s EWiseAddV: %v", label, err)
			}
			tm := copyModel(models[ui])
			for k, v := range models[vi] {
				if cv, ok := tm[k]; ok {
					tm[k] = cv + v
				} else {
					tm[k] = v
				}
			}
			models[wi] = vecOracleWrite(models[wi], tm, n, stored, eff, useMask, scmp, accum, replace)
		case 2: // apply(neg)
			if err := ApplyV(vecs[wi], mk, acc, neg, vecs[ui], desc); err != nil {
				t.Fatalf("%s ApplyV: %v", label, err)
			}
			tm := map[int]float64{}
			for k, v := range models[ui] {
				tm[k] = -v
			}
			models[wi] = vecOracleWrite(models[wi], tm, n, stored, eff, useMask, scmp, accum, replace)
		case 3: // point updates
			for b := 0; b < 4; b++ {
				i := rng.Intn(n)
				if rng.Intn(4) == 0 {
					if err := vecs[wi].RemoveElement(i); err != nil {
						t.Fatalf("%s Remove: %v", label, err)
					}
					delete(models[wi], i)
				} else {
					x := float64(rng.Intn(9) + 1)
					if err := vecs[wi].SetElement(x, i); err != nil {
						t.Fatalf("%s Set: %v", label, err)
					}
					models[wi][i] = x
				}
			}
		case 4: // eWiseMult (intersection)
			mul := BinaryOp[float64, float64, float64]{Name: "times", F: func(x, y float64) float64 { return x * y }}
			if err := EWiseMultV(vecs[wi], mk, acc, mul, vecs[ui], vecs[vi], desc); err != nil {
				t.Fatalf("%s EWiseMultV: %v", label, err)
			}
			tm := map[int]float64{}
			for k, uv := range models[ui] {
				if vv, ok := models[vi][k]; ok {
					tm[k] = uv * vv
				}
			}
			models[wi] = vecOracleWrite(models[wi], tm, n, stored, eff, useMask, scmp, accum, replace)
		}

		// Compare only every 7th step so the nonblocking queue runs deep.
		if step%7 != 6 && step != steps-1 {
			continue
		}
		for k := range vecs {
			got := vecModel(t, vecs[k])
			want := models[k]
			if len(got) != len(want) {
				t.Fatalf("%s: vec %d entries %v want %v", label, k, got, want)
			}
			for i, v := range want {
				if got[i] != v {
					t.Fatalf("%s: vec %d [%d] got %v want %v", label, k, i, got[i], v)
				}
			}
		}
	}
}

package core

import "testing"

func TestInfoStringsAndClasses(t *testing.T) {
	cases := map[Info]string{
		Success:              "Success",
		NoValue:              "NoValue",
		UninitializedObject:  "UninitializedObject",
		NullPointer:          "NullPointer",
		InvalidValue:         "InvalidValue",
		InvalidIndex:         "InvalidIndex",
		DomainMismatch:       "DomainMismatch",
		DimensionMismatch:    "DimensionMismatch",
		OutputNotEmpty:       "OutputNotEmpty",
		UninitializedContext: "UninitializedContext",
		OutOfMemory:          "OutOfMemory",
		IndexOutOfBounds:     "IndexOutOfBounds",
		InvalidObject:        "InvalidObject",
		PanicInfo:            "Panic",
	}
	for info, want := range cases {
		if info.String() != want {
			t.Fatalf("%d string %q want %q", int(info), info.String(), want)
		}
	}
	if Info(99).String() != "Info(99)" {
		t.Fatalf("unknown info string %q", Info(99).String())
	}
	for _, api := range []Info{UninitializedObject, NullPointer, InvalidValue, InvalidIndex, DomainMismatch, DimensionMismatch, OutputNotEmpty, UninitializedContext} {
		if !api.IsAPIError() || api.IsExecutionError() {
			t.Fatalf("%v should be an API error", api)
		}
	}
	for _, ex := range []Info{OutOfMemory, IndexOutOfBounds, InvalidObject, PanicInfo} {
		if ex.IsAPIError() || !ex.IsExecutionError() {
			t.Fatalf("%v should be an execution error", ex)
		}
	}
	if Success.IsAPIError() || Success.IsExecutionError() || NoValue.IsAPIError() {
		t.Fatal("benign codes misclassified")
	}
	// Error rendering with and without message.
	e := &Error{Info: DimensionMismatch, Op: "MxM"}
	if e.Error() != "graphblas: MxM: DimensionMismatch" {
		t.Fatalf("error string %q", e.Error())
	}
	e.Msg = "3 vs 4"
	if e.Error() != "graphblas: MxM: DimensionMismatch: 3 vs 4" {
		t.Fatalf("error string %q", e.Error())
	}
	if InfoOf(errNotGraphBLAS{}) != PanicInfo {
		t.Fatal("foreign errors should map to Panic")
	}
}

type errNotGraphBLAS struct{}

func (errNotGraphBLAS) Error() string { return "other" }

func TestOperatorConstructors(t *testing.T) {
	if _, err := NewUnaryOp[int, int]("f", nil); InfoOf(err) != NullPointer {
		t.Fatalf("nil unary accepted: %v", err)
	}
	u, err := NewUnaryOp("double", func(x int) int { return 2 * x })
	if err != nil || !u.Defined() || u.F(3) != 6 {
		t.Fatalf("unary op %v", err)
	}
	if _, err := NewBinaryOp[int, int, int]("g", nil); InfoOf(err) != NullPointer {
		t.Fatalf("nil binary accepted: %v", err)
	}
	b, err := NewBinaryOp("sub", func(x, y int) int { return x - y })
	if err != nil || b.F(5, 3) != 2 {
		t.Fatalf("binary op %v", err)
	}
	if _, err := NewMonoid(BinaryOp[int, int, int]{}, 0); InfoOf(err) != UninitializedObject {
		t.Fatalf("undefined monoid op accepted: %v", err)
	}
	if _, err := NewSemiring(Monoid[int]{}, b); InfoOf(err) != UninitializedObject {
		t.Fatalf("undefined add monoid accepted: %v", err)
	}
	m, _ := NewMonoid(b, 0)
	if _, err := NewSemiring(m, BinaryOp[int, int, int]{}); InfoOf(err) != UninitializedObject {
		t.Fatalf("undefined mul accepted: %v", err)
	}
}

func TestDescriptorAPI(t *testing.T) {
	d, err := NewDescriptor()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Set(OutP, Replace); err != nil {
		t.Fatal(err)
	}
	if err := d.Set(MaskField, SCMP); err != nil {
		t.Fatal(err)
	}
	if err := d.Set(Inp0, Tran); err != nil {
		t.Fatal(err)
	}
	if err := d.Set(Inp1, Tran); err != nil {
		t.Fatal(err)
	}
	if !d.replace() || !d.scmp() || !d.tran0() || !d.tran1() {
		t.Fatal("settings not recorded")
	}
	if err := d.Set(MaskField, Tran); InfoOf(err) != InvalidValue {
		t.Fatalf("invalid combo accepted: %v", err)
	}
	var nilDesc *Descriptor
	if err := nilDesc.Set(OutP, Replace); InfoOf(err) != NullPointer {
		t.Fatalf("nil descriptor set: %v", err)
	}
	if nilDesc.replace() || nilDesc.scmp() || nilDesc.tran0() || nilDesc.tran1() {
		t.Fatal("nil descriptor should be all defaults")
	}
	// Field and Value render as the paper's literals.
	if OutP.String() != "GrB_OUTP" || MaskField.String() != "GrB_MASK" || Inp0.String() != "GrB_INP0" || Inp1.String() != "GrB_INP1" {
		t.Fatal("field strings")
	}
	if Replace.String() != "GrB_REPLACE" || SCMP.String() != "GrB_SCMP" || Tran.String() != "GrB_TRAN" {
		t.Fatal("value strings")
	}
	if Field(9).String() != "Field(?)" || Value(9).String() != "Value(?)" {
		t.Fatal("unknown field/value strings")
	}
	if Blocking.String() != "Blocking" || NonBlocking.String() != "NonBlocking" {
		t.Fatal("mode strings")
	}
}

package core

import (
	"math/rand"
	"strings"
	"testing"

	"graphblas/internal/faults"
	"graphblas/internal/format"
)

// withFaults installs a fault plan for the duration of a test.
func withFaults(t *testing.T, seed int64, rules ...faults.Rule) {
	t.Helper()
	faults.Configure(seed, rules...)
	t.Cleanup(faults.Disable)
}

// committedTuples peeks at a matrix's committed store directly (in-package),
// bypassing the invalid-object guard of the public read methods: the point
// of the rollback tests is exactly to observe the contents of an object the
// API reports as invalid.
func committedTuples(m *Matrix[float64]) dmat {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushPendingLocked()
	m.materializeLocked()
	d := dmat{}
	is, js, vs := m.data.Tuples()
	for k := range is {
		d[key{is[k], js[k]}] = vs[k]
	}
	return d
}

// TestFaults_OpLevelRollback: an injected op-level fault fails the operation
// and poisons the output, but the output's committed contents are rolled
// back intact — invalid but restorable — and a full overwrite rehabilitates
// it, per Section V.
func TestFaults_OpLevelRollback(t *testing.T) {
	withMode(t, NonBlocking, func() {
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](3, 3)
		_ = a.Build([]int{0, 1, 2}, []int{1, 2, 0}, []float64{1, 2, 3}, NoAccum[float64]())
		c, _ := NewMatrix[float64](3, 3)
		_ = c.Build([]int{0, 2}, []int{0, 1}, []float64{7, 9}, NoAccum[float64]())
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		before := committedTuples(c)

		withFaults(t, 1, faults.Rule{Site: "MxM", Kind: faults.OOM, Times: 1})
		// Accumulating MxM so dead-store elimination cannot skip it.
		if err := MxM(c, NoMask, plusF64(), s, a, a, nil); err != nil {
			t.Fatalf("MxM enqueue: %v", err)
		}
		if err := Wait(); InfoOf(err) != OutOfMemory {
			t.Fatalf("Wait: got %v want OutOfMemory", err)
		}
		if _, err := c.NVals(); InfoOf(err) != InvalidObject {
			t.Fatalf("failed output not invalid: %v", err)
		}
		equalDense(t, committedTuples(c), before, "rolled-back contents")

		st := StatsSnapshot()
		if st.FaultsInjected == 0 {
			t.Fatalf("FaultsInjected not counted: %+v", st)
		}
		if st.Rollbacks == 0 {
			t.Fatalf("Rollbacks not counted: %+v", st)
		}

		// Full overwrite rehabilitates; the new content is the new result.
		if err := Transpose(c, NoMask, NoAccum[float64](), a, nil); err != nil {
			t.Fatalf("Transpose: %v", err)
		}
		if err := Wait(); err != nil {
			t.Fatalf("Wait after rehabilitation: %v", err)
		}
		want := dmat{{1, 0}: 1, {2, 1}: 2, {0, 2}: 3}
		equalDense(t, denseOf(t, c), want, "rehabilitated")
	})
}

// TestFaults_LastErrorClearedOnSuccess is the satellite regression test: a
// successful method supersedes the previous GrB_error string in blocking
// mode, and a clean flush does the same in nonblocking mode.
func TestFaults_LastErrorClearedOnSuccess(t *testing.T) {
	withMode(t, Blocking, func() {
		withFaults(t, 1, faults.Rule{Site: "Transpose", Kind: faults.KernelErr, Times: 1})
		a, _ := NewMatrix[float64](2, 2)
		_ = a.Build([]int{0}, []int{1}, []float64{1}, NoAccum[float64]())
		c, _ := NewMatrix[float64](2, 2)
		if err := Transpose(c, NoMask, NoAccum[float64](), a, nil); InfoOf(err) != PanicInfo {
			t.Fatalf("injected kernel failure: %v", err)
		}
		if LastError() == "" {
			t.Fatal("LastError empty right after a failure")
		}
		if err := Transpose(c, NoMask, NoAccum[float64](), a, nil); err != nil {
			t.Fatalf("retry: %v", err)
		}
		if got := LastError(); got != "" {
			t.Fatalf("LastError stale after success: %q", got)
		}
	})
	withMode(t, NonBlocking, func() {
		withFaults(t, 1, faults.Rule{Site: "Transpose", Kind: faults.KernelErr, Times: 1})
		a, _ := NewMatrix[float64](2, 2)
		_ = a.Build([]int{0}, []int{1}, []float64{1}, NoAccum[float64]())
		c, _ := NewMatrix[float64](2, 2)
		_ = Transpose(c, NoMask, NoAccum[float64](), a, nil)
		if err := Wait(); InfoOf(err) != PanicInfo {
			t.Fatalf("Wait: %v", err)
		}
		if LastError() == "" {
			t.Fatal("LastError empty after failed sequence")
		}
		d, _ := NewMatrix[float64](2, 2)
		_ = Transpose(d, NoMask, NoAccum[float64](), a, nil)
		if err := Wait(); err != nil {
			t.Fatalf("clean Wait: %v", err)
		}
		if got := LastError(); got != "" {
			t.Fatalf("LastError stale after clean flush: %q", got)
		}
	})
}

// TestFaults_SequenceErrorLog: Wait reports the first error of the sequence;
// SequenceErrors exposes every failure with op names and program-order
// positions, and survives the end of the sequence.
func TestFaults_SequenceErrorLog(t *testing.T) {
	withMode(t, NonBlocking, func() {
		withFaults(t, 1, faults.Rule{Site: "MxM", Kind: faults.OOM})
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](3, 3)
		_ = a.Build([]int{0, 1, 2}, []int{1, 2, 0}, []float64{1, 2, 3}, NoAccum[float64]())
		c, _ := NewMatrix[float64](3, 3)
		d, _ := NewMatrix[float64](3, 3)
		e, _ := NewMatrix[float64](3, 3)
		_ = MxM(c, NoMask, plusF64(), s, a, a, nil)          // pos 0: fails
		_ = Transpose(d, NoMask, NoAccum[float64](), a, nil) // pos 1: succeeds
		_ = MxM(e, NoMask, plusF64(), s, a, a, nil)          // pos 2: fails
		if err := Wait(); InfoOf(err) != OutOfMemory {
			t.Fatalf("Wait: %v", err)
		}
		log := SequenceErrors()
		if len(log) != 2 {
			t.Fatalf("log has %d entries, want 2: %v", len(log), log)
		}
		if log[0].Pos != 0 || log[0].Op != "MxM" || InfoOf(log[0].Err) != OutOfMemory {
			t.Fatalf("entry 0: %v", log[0])
		}
		if log[1].Pos != 2 || log[1].Op != "MxM" {
			t.Fatalf("entry 1: %v", log[1])
		}
		// The log of the terminated sequence stays readable until the next
		// sequence terminates.
		if again := SequenceErrors(); len(again) != 2 {
			t.Fatalf("retired log lost: %v", again)
		}
		// A fresh clean sequence replaces it.
		faults.Disable()
		f, _ := NewMatrix[float64](3, 3)
		_ = Transpose(f, NoMask, NoAccum[float64](), a, nil)
		if err := Wait(); err != nil {
			t.Fatalf("clean Wait: %v", err)
		}
		if log := SequenceErrors(); len(log) != 0 {
			t.Fatalf("log not cleared by new sequence: %v", log)
		}
	})
}

// buildDenseMatrix fills an n×n matrix about p full with values from rng.
func buildDenseMatrix(t *testing.T, n int, p float64, rng *rand.Rand) *Matrix[float64] {
	t.Helper()
	m, _ := newTestMatrix(t, rng, n, n, p)
	return m
}

// buildVector fills a size-n vector about p full.
func buildVector(t *testing.T, n int, p float64, rng *rand.Rand) *Vector[float64] {
	t.Helper()
	v, err := NewVector[float64](n)
	if err != nil {
		t.Fatalf("NewVector: %v", err)
	}
	var idx []int
	var val []float64
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			idx = append(idx, i)
			val = append(val, float64(rng.Intn(9)+1))
		}
	}
	if err := v.Build(idx, val, NoAccum[float64]()); err != nil {
		t.Fatalf("Build vector: %v", err)
	}
	return v
}

func vecTuples(t *testing.T, v *Vector[float64]) map[int]float64 {
	t.Helper()
	idx, val, err := v.ExtractTuples()
	if err != nil {
		t.Fatalf("ExtractTuples: %v", err)
	}
	out := map[int]float64{}
	for k := range idx {
		out[idx[k]] = val[k]
	}
	return out
}

// TestFaults_KernelFallbackMxV: a bitmap MxV kernel that fails with an
// injected fault is transparently retried on the generic CSR path; the
// result is correct and the retry is visible in StatsSnapshot.
func TestFaults_KernelFallbackMxV(t *testing.T) {
	withMode(t, Blocking, func() {
		rng := rand.New(rand.NewSource(7))
		s := plusTimesF64(t)
		a := buildDenseMatrix(t, 24, 0.5, rng)
		u := buildVector(t, 24, 0.6, rng)
		if err := a.SetFormat(format.BitmapKind); err != nil {
			t.Fatalf("SetFormat: %v", err)
		}
		// Reference result with no faults installed.
		wantV, _ := NewVector[float64](24)
		if err := MxV(wantV, NoMaskV, NoAccum[float64](), s, a, u, nil); err != nil {
			t.Fatalf("reference MxV: %v", err)
		}
		want := vecTuples(t, wantV)

		withFaults(t, 1, faults.Rule{Site: "format.kernel.bitmap.mxv*", Kind: faults.KernelErr})
		base := StatsSnapshot().KernelRetries
		w, _ := NewVector[float64](24)
		if err := MxV(w, NoMaskV, NoAccum[float64](), s, a, u, nil); err != nil {
			t.Fatalf("MxV under injection not recovered: %v", err)
		}
		got := vecTuples(t, w)
		if len(got) != len(want) {
			t.Fatalf("nvals got %d want %d", len(got), len(want))
		}
		for i, x := range want {
			if got[i] != x {
				t.Fatalf("w[%d] got %v want %v", i, got[i], x)
			}
		}
		if st := StatsSnapshot(); st.KernelRetries == base {
			t.Fatalf("retry not counted: %+v", st)
		}
	})
}

// TestFaults_KernelFallbackMxM is the MxM counterpart, covering both the
// ⟨+,×⟩ fast path and the generic bitmap SpGEMM site.
func TestFaults_KernelFallbackMxM(t *testing.T) {
	withMode(t, Blocking, func() {
		rng := rand.New(rand.NewSource(11))
		s := plusTimesF64(t)
		a := buildDenseMatrix(t, 16, 0.4, rng)
		b := buildDenseMatrix(t, 16, 0.6, rng)
		if err := b.SetFormat(format.BitmapKind); err != nil {
			t.Fatalf("SetFormat: %v", err)
		}
		wantC, _ := NewMatrix[float64](16, 16)
		if err := MxM(wantC, NoMask, NoAccum[float64](), s, a, b, nil); err != nil {
			t.Fatalf("reference MxM: %v", err)
		}
		want := denseOf(t, wantC)

		withFaults(t, 1, faults.Rule{Site: "format.kernel.bitmap.mxm*", Kind: faults.OOM})
		base := StatsSnapshot().KernelRetries
		c, _ := NewMatrix[float64](16, 16)
		if err := MxM(c, NoMask, NoAccum[float64](), s, a, b, nil); err != nil {
			t.Fatalf("MxM under injection not recovered: %v", err)
		}
		equalDense(t, denseOf(t, c), want, "fallback MxM")
		if st := StatsSnapshot(); st.KernelRetries == base {
			t.Fatalf("retry not counted: %+v", st)
		}
	})
}

// TestFaults_AllocGovernorFallback: with a tiny allocation budget the bitmap
// conversion itself is denied by the governor, and the operation still
// completes on the CSR path.
func TestFaults_AllocGovernorFallback(t *testing.T) {
	withMode(t, Blocking, func() {
		rng := rand.New(rand.NewSource(13))
		s := plusTimesF64(t)
		a := buildDenseMatrix(t, 32, 0.5, rng)
		u := buildVector(t, 32, 0.6, rng)
		if err := a.SetFormat(format.BitmapKind); err != nil {
			t.Fatalf("SetFormat: %v", err)
		}
		wantV, _ := NewVector[float64](32)
		if err := MxV(wantV, NoMaskV, NoAccum[float64](), s, a, u, nil); err != nil {
			t.Fatalf("reference MxV: %v", err)
		}
		want := vecTuples(t, wantV)

		prev := faults.SetAllocBudget(256) // far below the 32×32 dense form
		t.Cleanup(func() { faults.SetAllocBudget(prev) })
		// The cached bitmap from the reference run must not mask the governed
		// conversion; drop it by touching the matrix.
		a.setData(a.mdat())
		base := StatsSnapshot().KernelRetries
		w, _ := NewVector[float64](32)
		if err := MxV(w, NoMaskV, NoAccum[float64](), s, a, u, nil); err != nil {
			t.Fatalf("MxV under governor not recovered: %v", err)
		}
		got := vecTuples(t, w)
		for i, x := range want {
			if got[i] != x {
				t.Fatalf("w[%d] got %v want %v", i, got[i], x)
			}
		}
		if st := StatsSnapshot(); st.KernelRetries == base {
			t.Fatalf("governed denial not retried: %+v", st)
		}
	})
}

// TestFaults_PanicKindNotRetried: Panic-kind faults model faulty user
// operators; they must take the GrB_PANIC route, not the silent kernel
// retry.
func TestFaults_PanicKindNotRetried(t *testing.T) {
	withMode(t, Blocking, func() {
		rng := rand.New(rand.NewSource(17))
		s := plusTimesF64(t)
		a := buildDenseMatrix(t, 16, 0.5, rng)
		u := buildVector(t, 16, 0.6, rng)
		if err := a.SetFormat(format.BitmapKind); err != nil {
			t.Fatalf("SetFormat: %v", err)
		}
		withFaults(t, 1, faults.Rule{Site: "format.kernel.bitmap.mxv*", Kind: faults.PanicFault, Times: 1})
		base := StatsSnapshot().KernelRetries
		w, _ := NewVector[float64](16)
		if err := MxV(w, NoMaskV, NoAccum[float64](), s, a, u, nil); InfoOf(err) != PanicInfo {
			t.Fatalf("Panic-kind fault surfaced as %v", err)
		}
		if st := StatsSnapshot(); st.KernelRetries != base {
			t.Fatalf("panic fault was retried: %+v", st)
		}
	})
}

// TestFaults_PanicStackNamesOperator is the satellite-2 check: the GrB_PANIC
// diagnostic carries a trimmed stack that names the faulty operator's frame
// instead of just "unknown internal error".
func TestFaults_PanicStackNamesOperator(t *testing.T) {
	withMode(t, Blocking, func() {
		boom := UnaryOp[float64, float64]{Name: "boom", F: func(float64) float64 { panic("operator bug") }}
		a, _ := NewMatrix[float64](2, 2)
		_ = a.Build([]int{0}, []int{1}, []float64{1}, NoAccum[float64]())
		c, _ := NewMatrix[float64](2, 2)
		err := ApplyM(c, NoMask, NoAccum[float64](), boom, a, nil)
		if InfoOf(err) != PanicInfo {
			t.Fatalf("ApplyM: %v", err)
		}
		msg := err.Error()
		if !strings.Contains(msg, "operator bug") {
			t.Fatalf("panic value lost: %s", msg)
		}
		if !strings.Contains(msg, "fault_test.go") && !strings.Contains(msg, ".go:") {
			t.Fatalf("no stack frames in diagnostic: %s", msg)
		}
	})
}

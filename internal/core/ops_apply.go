package core

import (
	"graphblas/internal/format"
	"graphblas/internal/obs"
	"graphblas/internal/sparse"
)

// apply (Table II): C ⊙= F_u(A) and w ⊙= F_u(u) — a unary function mapped
// over the stored values, preserving structure. The C API uses apply both
// for computation (GrB_MINV_FP32 in Figure 3 line 57) and for domain casts
// (GrB_IDENTITY_BOOL in Figure 3 line 41); with generics a cast is just a
// unary operator with distinct input and output domains.

// ApplyM computes C ⊙= f(A) for matrices (GrB_Matrix_apply).
func ApplyM[DC, DA, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], f UnaryOp[DA, DC], a *Matrix[DA], desc *Descriptor) error {
	const name = "ApplyM"
	if err := checkActive(name); err != nil {
		return err
	}
	if c == nil || a == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&c.obj, name, "C"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !f.Defined() {
		return errf(UninitializedObject, name, "unary operator not initialized")
	}
	an, am := a.nr, a.nc
	if desc.tran0() {
		an, am = am, an
	}
	if c.nr != an || c.nc != am {
		return errf(DimensionMismatch, name, "output is %dx%d, result is %dx%d", c.nr, c.nc, an, am)
	}
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return errf(DimensionMismatch, name, "mask is %dx%d, output is %dx%d", mask.nr, mask.nc, c.nr, c.nc)
	}
	reads := maskReadsM([]*obj{&a.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	tran0, scmp, replace := desc.tran0(), desc.scmp(), desc.replace()
	return enqueue(name, &c.obj, reads, overwrites, func() error {
		ad := a.mdat()
		if tran0 {
			ad = a.transposed()
		}
		t := sparse.ApplyCSR(ad, f.F)
		mm := resolveMatMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		c.setData(sparse.WriteCSR(c.mdat(), t, mm, accumF, replace))
		return nil
	})
}

// ApplyV computes w ⊙= f(u) for vectors (GrB_Vector_apply).
func ApplyV[DC, DA, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], f UnaryOp[DA, DC], u *Vector[DA], desc *Descriptor) error {
	const name = "ApplyV"
	if err := checkActive(name); err != nil {
		return err
	}
	if w == nil || u == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&w.obj, name, "w"); err != nil {
		return err
	}
	if err := objOK(&u.obj, name, "u"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !f.Defined() {
		return errf(UninitializedObject, name, "unary operator not initialized")
	}
	if w.n != u.n {
		return errf(DimensionMismatch, name, "output has size %d, input has size %d", w.n, u.n)
	}
	if mask != nil && mask.n != w.n {
		return errf(DimensionMismatch, name, "mask has size %d, output has size %d", mask.n, w.n)
	}
	reads := maskReadsV([]*obj{&u.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	scmp, replace := desc.scmp(), desc.replace()
	var accumF func(DC, DC) DC
	if accum.Defined() {
		accumF = accum.F
	}
	// Fusion capabilities (fusion.go). Producer: with no mask and no
	// accumulator the output is exactly f mapped over u, expressible as a
	// virtual vector. Consumer: always — a fused upstream of u feeds
	// FusedVecMap, with this op's write mask pushed into the kernel (replace
	// mode makes allowed positions the entire surviving structure, so the
	// pushdown is exact; merge mode keeps old content only at disallowed
	// positions, which the kernel skips and the mask merge restores).
	// A mask aliasing u vetoes consumption (see fuseInfo.consume): the fused
	// kernel would resolve the mask from u's stale committed store while
	// streaming u's fresh values.
	fi := &fuseInfo{srcID: u.obj.id}
	if mask == nil && !accum.Defined() {
		fi.producer = applySource[DA, DC]{u: u, f: f.F}
	}
	if mask == nil || mask.obj.id != u.obj.id {
		fi.consume = func(src any) (func() error, any, bool) {
			vs, ok := src.(vecSource[DA])
			if !ok {
				return nil, nil, false
			}
			run := func() error {
				n, idx, get := vs.vecElems()
				vm := resolveVecMask(mask, scmp)
				t := sparse.FusedVecMap(n, idx, get, f.F, vm)
				w.setVData(sparse.WriteVec(w.vdat(), t, vm, accumF, replace))
				return nil
			}
			var chained any
			if mask == nil && !accum.Defined() {
				chained = composedSource[DA, DC]{inner: vs, f: f.F}
			}
			return run, chained, true
		}
	}
	return enqueueFusable(name, &w.obj, reads, overwrites, format.HintNone, obs.Begin(name), fi, func() error {
		t := sparse.VecApply(u.vdat(), f.F)
		vm := resolveVecMask(mask, scmp)
		w.setVData(sparse.WriteVec(w.vdat(), t, vm, accumF, replace))
		return nil
	})
}

// ApplyBindFirstM computes C ⊙= f(x, A): the binary operator f applied with
// a bound first scalar argument (a later-revision extension used to scale a
// matrix by a constant).
func ApplyBindFirstM[DC, DX, DA, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], f BinaryOp[DX, DA, DC], x DX, a *Matrix[DA], desc *Descriptor) error {
	if !f.Defined() {
		return errf(UninitializedObject, "ApplyBindFirstM", "binary operator not initialized")
	}
	bound := UnaryOp[DA, DC]{Name: f.Name + "_bind1st", F: func(v DA) DC { return f.F(x, v) }}
	return ApplyM(c, mask, accum, bound, a, desc)
}

// ApplyBindSecondM computes C ⊙= f(A, y): the binary operator f applied
// with a bound second scalar argument.
func ApplyBindSecondM[DC, DA, DY, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], f BinaryOp[DA, DY, DC], a *Matrix[DA], y DY, desc *Descriptor) error {
	if !f.Defined() {
		return errf(UninitializedObject, "ApplyBindSecondM", "binary operator not initialized")
	}
	bound := UnaryOp[DA, DC]{Name: f.Name + "_bind2nd", F: func(v DA) DC { return f.F(v, y) }}
	return ApplyM(c, mask, accum, bound, a, desc)
}

// ApplyBindFirstV computes w ⊙= f(x, u) for vectors.
func ApplyBindFirstV[DC, DX, DU, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], f BinaryOp[DX, DU, DC], x DX, u *Vector[DU], desc *Descriptor) error {
	if !f.Defined() {
		return errf(UninitializedObject, "ApplyBindFirstV", "binary operator not initialized")
	}
	bound := UnaryOp[DU, DC]{Name: f.Name + "_bind1st", F: func(v DU) DC { return f.F(x, v) }}
	return ApplyV(w, mask, accum, bound, u, desc)
}

// ApplyBindSecondV computes w ⊙= f(u, y) for vectors.
func ApplyBindSecondV[DC, DU, DY, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], f BinaryOp[DU, DY, DC], u *Vector[DU], y DY, desc *Descriptor) error {
	if !f.Defined() {
		return errf(UninitializedObject, "ApplyBindSecondV", "binary operator not initialized")
	}
	bound := UnaryOp[DU, DC]{Name: f.Name + "_bind2nd", F: func(v DU) DC { return f.F(v, y) }}
	return ApplyV(w, mask, accum, bound, u, desc)
}

// ApplyIndexOpM computes C ⊙= f(A_ij, i, j): the index-aware apply
// extension. Structure is preserved; the operator sees each entry's
// coordinates.
func ApplyIndexOpM[DC, DA, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], f IndexUnaryOp[DA, DC], a *Matrix[DA], desc *Descriptor) error {
	const name = "ApplyIndexOpM"
	if err := checkActive(name); err != nil {
		return err
	}
	if c == nil || a == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&c.obj, name, "C"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !f.Defined() {
		return errf(UninitializedObject, name, "index operator not initialized")
	}
	an, am := a.nr, a.nc
	if desc.tran0() {
		an, am = am, an
	}
	if c.nr != an || c.nc != am {
		return errf(DimensionMismatch, name, "output is %dx%d, result is %dx%d", c.nr, c.nc, an, am)
	}
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return errf(DimensionMismatch, name, "mask is %dx%d, output is %dx%d", mask.nr, mask.nc, c.nr, c.nc)
	}
	reads := maskReadsM([]*obj{&a.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	tran0, scmp, replace := desc.tran0(), desc.scmp(), desc.replace()
	return enqueue(name, &c.obj, reads, overwrites, func() error {
		ad := a.mdat()
		if tran0 {
			ad = a.transposed()
		}
		t := sparse.ApplyIndexCSR(ad, f.F)
		mm := resolveMatMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		c.setData(sparse.WriteCSR(c.mdat(), t, mm, accumF, replace))
		return nil
	})
}

// ApplyIndexOpV computes w ⊙= f(u_i, i, 0) for vectors.
func ApplyIndexOpV[DC, DU, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], f IndexUnaryOp[DU, DC], u *Vector[DU], desc *Descriptor) error {
	const name = "ApplyIndexOpV"
	if !f.Defined() {
		return errf(UninitializedObject, name, "index operator not initialized")
	}
	if err := checkActive(name); err != nil {
		return err
	}
	if w == nil || u == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&w.obj, name, "w"); err != nil {
		return err
	}
	if err := objOK(&u.obj, name, "u"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if w.n != u.n {
		return errf(DimensionMismatch, name, "output has size %d, input has size %d", w.n, u.n)
	}
	if mask != nil && mask.n != w.n {
		return errf(DimensionMismatch, name, "mask has size %d, output has size %d", mask.n, w.n)
	}
	reads := maskReadsV([]*obj{&u.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	scmp, replace := desc.scmp(), desc.replace()
	return enqueue(name, &w.obj, reads, overwrites, func() error {
		t := sparse.VecApplyIndex(u.vdat(), func(v DU, i int) DC { return f.F(v, i, 0) })
		vm := resolveVecMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		w.setVData(sparse.WriteVec(w.vdat(), t, vm, accumF, replace))
		return nil
	})
}

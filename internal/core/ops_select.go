package core

import "graphblas/internal/sparse"

// Extension operations beyond the 2017 surface, marked as such: select
// (structural filtering with an index-aware predicate), Kronecker product,
// and building a diagonal matrix from a vector. They follow the same
// three-step mask/accumulator pipeline as every Table II operation.

// SelectM computes C ⊙= select(pred, A): the entries of A for which
// pred(value, i, j) holds (extension; GrB_select in later revisions). The
// predicate's output domain is bool by construction.
func SelectM[DC, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], pred IndexUnaryOp[DC, bool], a *Matrix[DC], desc *Descriptor) error {
	const name = "SelectM"
	if err := checkActive(name); err != nil {
		return err
	}
	if c == nil || a == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&c.obj, name, "C"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !pred.Defined() {
		return errf(UninitializedObject, name, "predicate not initialized")
	}
	an, am := a.nr, a.nc
	if desc.tran0() {
		an, am = am, an
	}
	if c.nr != an || c.nc != am {
		return errf(DimensionMismatch, name, "output is %dx%d, result is %dx%d", c.nr, c.nc, an, am)
	}
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return errf(DimensionMismatch, name, "mask is %dx%d, output is %dx%d", mask.nr, mask.nc, c.nr, c.nc)
	}
	reads := maskReadsM([]*obj{&a.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	tran0, scmp, replace := desc.tran0(), desc.scmp(), desc.replace()
	return enqueue(name, &c.obj, reads, overwrites, func() error {
		ad := a.mdat()
		if tran0 {
			ad = a.transposed()
		}
		t := sparse.SelectCSR(ad, func(v DC, i, j int) bool { return pred.F(v, i, j) })
		mm := resolveMatMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		c.setData(sparse.WriteCSR(c.mdat(), t, mm, accumF, replace))
		return nil
	})
}

// SelectV computes w ⊙= select(pred, u) for vectors; the predicate's column
// argument is always 0.
func SelectV[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], pred IndexUnaryOp[DC, bool], u *Vector[DC], desc *Descriptor) error {
	const name = "SelectV"
	if err := checkActive(name); err != nil {
		return err
	}
	if w == nil || u == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&w.obj, name, "w"); err != nil {
		return err
	}
	if err := objOK(&u.obj, name, "u"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !pred.Defined() {
		return errf(UninitializedObject, name, "predicate not initialized")
	}
	if w.n != u.n {
		return errf(DimensionMismatch, name, "output has size %d, input has size %d", w.n, u.n)
	}
	if mask != nil && mask.n != w.n {
		return errf(DimensionMismatch, name, "mask has size %d, output has size %d", mask.n, w.n)
	}
	reads := maskReadsV([]*obj{&u.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	scmp, replace := desc.scmp(), desc.replace()
	return enqueue(name, &w.obj, reads, overwrites, func() error {
		t := sparse.VecSelect(u.vdat(), func(v DC, i int) bool { return pred.F(v, i, 0) })
		vm := resolveVecMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		w.setVData(sparse.WriteVec(w.vdat(), t, vm, accumF, replace))
		return nil
	})
}

// Kronecker computes C ⊙= A ⊗kron B with the semiring's multiplicative
// operator combining elements (extension; GrB_kronecker in later
// revisions).
func Kronecker[DC, DA, DB, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], mul BinaryOp[DA, DB, DC], a *Matrix[DA], b *Matrix[DB], desc *Descriptor) error {
	const name = "Kronecker"
	if err := checkActive(name); err != nil {
		return err
	}
	if c == nil || a == nil || b == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&c.obj, name, "C"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if err := objOK(&b.obj, name, "B"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !mul.Defined() {
		return errf(UninitializedObject, name, "operator not initialized")
	}
	an, am := a.nr, a.nc
	if desc.tran0() {
		an, am = am, an
	}
	bn, bm := b.nr, b.nc
	if desc.tran1() {
		bn, bm = bm, bn
	}
	if c.nr != an*bn || c.nc != am*bm {
		return errf(DimensionMismatch, name, "output is %dx%d, result is %dx%d", c.nr, c.nc, an*bn, am*bm)
	}
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return errf(DimensionMismatch, name, "mask is %dx%d, output is %dx%d", mask.nr, mask.nc, c.nr, c.nc)
	}
	reads := maskReadsM([]*obj{&a.obj, &b.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	tran0, tran1, scmp, replace := desc.tran0(), desc.tran1(), desc.scmp(), desc.replace()
	return enqueue(name, &c.obj, reads, overwrites, func() error {
		ad := a.mdat()
		if tran0 {
			ad = a.transposed()
		}
		bd := b.mdat()
		if tran1 {
			bd = b.transposed()
		}
		t := sparse.KronCSR(ad, bd, mul.F)
		mm := resolveMatMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		c.setData(sparse.WriteCSR(c.mdat(), t, mm, accumF, replace))
		return nil
	})
}

// Diag builds a square matrix whose k-th diagonal holds the stored entries
// of v (extension; GrB_Matrix_diag). The result is (n+|k|)×(n+|k|) where n
// is v's size; it is returned as a fresh matrix.
func Diag[D any](v *Vector[D], k int) (*Matrix[D], error) {
	const name = "Diag"
	if err := checkActive(name); err != nil {
		return nil, err
	}
	if v == nil {
		return nil, errf(UninitializedObject, name, "nil vector")
	}
	if err := objOK(&v.obj, name, "v"); err != nil {
		return nil, err
	}
	n := v.n
	if k < 0 {
		n += -k
	} else {
		n += k
	}
	m := &Matrix[D]{nr: n, nc: n, data: sparse.NewCSR[D](n, n)}
	m.initMatrix()
	m.obj.ctx = v.obj.ctx // the result lives in the source's execution context
	err := enqueue(name, &m.obj, []*obj{&v.obj}, true, func() error {
		is := make([]int, len(v.vdat().Idx))
		js := make([]int, len(v.vdat().Idx))
		for p, i := range v.vdat().Idx {
			if k >= 0 {
				is[p], js[p] = i, i+k
			} else {
				is[p], js[p] = i-k, i
			}
		}
		built, ok := sparse.BuildCSR(n, n, is, js, v.vdat().Val, nil)
		if !ok {
			// Defensive: the diagonal coordinates are unique by construction,
			// so a failed build means the kernel saw malformed tuples. That is
			// an internal invariant violation, not a user error — surface it
			// through the executor instead of committing an empty matrix.
			return errf(PanicInfo, name, "diagonal tuple build failed for %d entries", len(is))
		}
		m.setData(built)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

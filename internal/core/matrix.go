package core

import (
	"sync"

	"graphblas/internal/format"
	"graphblas/internal/sparse"
	"graphblas/internal/stream"
)

// Matrix is the opaque GraphBLAS matrix A = ⟨D, M, N, {(i, j, A_ij)}⟩ of
// Section III-A. Storage is compressed sparse row; a transposed copy is
// cached lazily because the descriptor's GrB_TRAN setting (Figure 2) makes
// transposed reads common, and invalidated on any mutation.
type Matrix[D any] struct {
	obj
	// nr, nc are the logical dimensions. Resize rewrites them while enqueued
	// closures may still be running on flush workers, so deferred code must
	// read them through dims() and writes must hold mu. grblint:guarded
	nr, nc int
	data   *sparse.CSR[D]

	// pending buffers single-element updates (SetElement/RemoveElement) so
	// interleaved point updates cost O(1) amortized instead of O(nnz); they
	// merge into the compressed storage when the matrix is next read. mu
	// guards pending, data installation, and the transpose cache so
	// read-only sharing across goroutines stays safe.
	pending []sparse.Tuple[D]
	mu      sync.Mutex
	tcache  *sparse.CSR[D]

	// Multi-format storage engine state. forced pins the layout chosen by
	// SetFormat (Auto = adaptive); bcache and hcache hold the bitmap and
	// hypersparse forms of the content, built lazily and invalidated on any
	// mutation. When a kernel materializes its result directly as bitmap,
	// data is nil and bcache is primary until a CSR consumer forces the
	// conversion back.
	forced format.Kind
	bcache *format.Bitmap[D]
	hcache *format.Hyper[D]

	// Streaming engine state. delta is the hypersparse overlay of absorbed
	// update batches layered over data; mcache is the lazily built merged
	// (data ⊕ delta) view readers consume while the overlay is live; deltaAge
	// counts batches absorbed since the last compaction and spolicy decides
	// when delta folds into data; epochID advances with every published
	// compaction, giving pinned epochs their identity. All guarded by mu,
	// and — like data — immutable once installed, so snapshots and pinned
	// epochs stay valid across later publications.
	delta    *format.HyperDelta[D]
	mcache   *sparse.CSR[D]
	deltaAge int
	epochID  uint64
	spolicy  stream.Policy
}

// NewMatrix creates an nrows-by-ncols matrix (GrB_Matrix_new). Both
// dimensions must be positive.
func NewMatrix[D any](nrows, ncols int) (*Matrix[D], error) {
	if err := checkActive("NewMatrix"); err != nil {
		return nil, err
	}
	if nrows <= 0 || ncols <= 0 {
		return nil, errf(InvalidValue, "NewMatrix", "dimensions must be positive, got %dx%d", nrows, ncols)
	}
	m := &Matrix[D]{nr: nrows, nc: ncols, data: sparse.NewCSR[D](nrows, ncols)}
	m.initMatrix()
	return m, nil
}

// initMatrix stamps a fresh identity and registers the transactional
// snapshot hook the executor uses to roll back a failed kernel. Every
// Matrix constructor funnels through here.
func (m *Matrix[D]) initMatrix() {
	m.initObj()
	m.snapshot = m.snapshotState
	m.spolicy = stream.DefaultPolicy()
}

// snapshotState captures the committed store — the pointers to the CSR,
// buffered updates, and format caches; all immutable once installed — and
// returns a closure restoring them. O(len(pending)) and allocation-light,
// so taking one per operation is cheap.
func (m *Matrix[D]) snapshotState() func() {
	m.mu.Lock()
	data, tcache, bcache, hcache := m.data, m.tcache, m.bcache, m.hcache
	delta, mcache, deltaAge, epochID := m.delta, m.mcache, m.deltaAge, m.epochID
	pending := append([]sparse.Tuple[D](nil), m.pending...)
	m.mu.Unlock()
	return func() {
		m.mu.Lock()
		m.data, m.tcache, m.bcache, m.hcache = data, tcache, bcache, hcache
		m.delta, m.mcache, m.deltaAge, m.epochID = delta, mcache, deltaAge, epochID
		m.pending = pending
		m.mu.Unlock()
	}
}

// setData replaces the storage, drops buffered updates, and invalidates the
// transpose and format caches. All whole-object mutation paths funnel
// through here.
func (m *Matrix[D]) setData(d *sparse.CSR[D]) {
	m.mu.Lock()
	m.data = d
	m.pending = nil
	m.tcache = nil
	m.bcache = nil
	m.hcache = nil
	// A whole-object overwrite supersedes any streamed-but-uncompacted
	// updates; keeping the overlay would double-apply them to the new store.
	m.delta = nil
	m.mcache = nil
	m.deltaAge = 0
	m.mu.Unlock()
}

// setDataBitmap installs a bitmap-resident result as the matrix content;
// the CSR form is materialized lazily only if a CSR consumer asks for it.
// This is how deferred multiply results land directly in the cheapest
// format.
func (m *Matrix[D]) setDataBitmap(b *format.Bitmap[D]) {
	m.mu.Lock()
	m.data = nil
	m.bcache = b
	m.pending = nil
	m.tcache = nil
	m.hcache = nil
	m.delta = nil
	m.mcache = nil
	m.deltaAge = 0
	m.mu.Unlock()
}

// materializeLocked ensures the CSR form exists when the bitmap form is
// primary; the caller holds m.mu.
func (m *Matrix[D]) materializeLocked() {
	if m.data == nil && m.bcache != nil {
		m.data = m.bcache.ToCSR()
		fmtConversions.Add(1)
	}
}

// flushPendingLocked merges buffered point updates into the storage; the
// caller holds m.mu. While a streaming overlay is live the updates fold into
// it instead of the main store — they were enqueued after the batches that
// built it, so layering them on top preserves program order, and the main
// store stays untouched for pinned epochs and the merge policy.
func (m *Matrix[D]) flushPendingLocked() {
	if len(m.pending) == 0 {
		return
	}
	if m.delta != nil {
		m.delta = format.MergeDeltas(m.delta, format.DeltaFromTuples(m.nr, m.nc, m.pending))
		m.pending = nil
		m.mcache = nil
		m.tcache = nil
		m.bcache = nil
		m.hcache = nil
		return
	}
	m.materializeLocked()
	m.data = sparse.ApplyTuples(m.data, m.pending)
	m.pending = nil
	m.tcache = nil
	m.bcache = nil
	m.hcache = nil
}

// viewLocked returns the CSR content readers must see: the main store
// overlaid with the streaming delta. The merged form is cached in mcache
// until the next mutation; the main store itself is NOT compacted here —
// reads must not perturb the merge policy's accounting or the epoch
// protocol. The caller holds m.mu.
func (m *Matrix[D]) viewLocked() *sparse.CSR[D] {
	m.flushPendingLocked()
	m.materializeLocked()
	if m.delta == nil {
		return m.data
	}
	if m.mcache == nil {
		m.mcache = format.MergeDeltaCSR(m.data, m.delta)
		fmtConversions.Add(1)
	}
	return m.mcache
}

// nnzLocked reports the stored-element count from whichever form is
// resident; the caller holds m.mu with pending already flushed.
func (m *Matrix[D]) nnzLocked() int {
	if m.delta != nil {
		return m.viewLocked().NNZ()
	}
	if m.data != nil {
		return m.data.NNZ()
	}
	if m.bcache != nil {
		return m.bcache.NNZ()
	}
	return 0
}

// mdat returns the up-to-date CSR view, merging any buffered point updates,
// converting out of a bitmap-primary state, and overlaying the streaming
// delta. Safe for concurrent readers.
func (m *Matrix[D]) mdat() *sparse.CSR[D] {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewLocked()
}

// transposed returns (computing and caching on first use) the CSR form of
// the matrix transpose. Safe for concurrent readers.
func (m *Matrix[D]) transposed() *sparse.CSR[D] {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.viewLocked()
	if m.tcache == nil {
		m.tcache = d.Transpose()
	}
	return m.tcache
}

// bitmapForRead returns the bitmap form of the matrix when the storage
// engine selects it for an operation described by hint — because the layout
// was forced with SetFormat or because the adaptive policy picked it — and
// nil when the caller should use another layout. The conversion is cached
// until the next mutation.
func (m *Matrix[D]) bitmapForRead(hint format.OpHint) *format.Bitmap[D] {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushPendingLocked()
	if !format.BitmapFeasible(m.nr, m.nc) {
		return nil
	}
	kind := m.forced
	if kind == format.Auto {
		kind = format.Choose(m.nr, m.nc, m.nnzLocked(), hint)
	}
	if kind != format.BitmapKind {
		return nil
	}
	if m.bcache == nil {
		m.bcache = format.BitmapFromCSR(m.viewLocked())
		fmtConversions.Add(1)
	}
	return m.bcache
}

// hyperForRead is bitmapForRead's hypersparse counterpart.
func (m *Matrix[D]) hyperForRead(hint format.OpHint) *format.Hyper[D] {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushPendingLocked()
	kind := m.forced
	if kind == format.Auto {
		kind = format.Choose(m.nr, m.nc, m.nnzLocked(), hint)
	}
	if kind != format.HyperKind {
		return nil
	}
	if m.hcache == nil {
		m.hcache = format.HyperFromCSR(m.viewLocked())
		fmtConversions.Add(1)
	}
	return m.hcache
}

// SetFormat pins the storage layout the engine uses for this matrix (in the
// spirit of SuiteSparse's GxB format controls): format.Auto restores
// adaptive selection; CSRKind, BitmapKind, or HyperKind force one layout
// for every subsequent operation. Forcing BitmapKind on a matrix whose
// dense form would exceed the engine's allocation cap is rejected.
func (m *Matrix[D]) SetFormat(k format.Kind) error {
	if err := objOK(&m.obj, "Matrix.SetFormat", "m"); err != nil {
		return err
	}
	switch k {
	case format.Auto, format.CSRKind, format.BitmapKind, format.HyperKind:
	default:
		return errf(InvalidValue, "Matrix.SetFormat", "unknown format kind %d", int(k))
	}
	nr, nc := m.dims()
	if k == format.BitmapKind && !format.BitmapFeasible(nr, nc) {
		return errf(InvalidValue, "Matrix.SetFormat", "%dx%d dense form exceeds the bitmap cell cap", nr, nc)
	}
	m.mu.Lock()
	m.forced = k
	m.mu.Unlock()
	return nil
}

// Format reports the layout the engine would use for the matrix's next
// multiply-style read: the forced layout if one is set, otherwise the
// adaptive policy's choice under the most recently recorded consumer hint.
// Forces completion so the decision reflects final content.
func (m *Matrix[D]) Format() (format.Kind, error) {
	if err := objOK(&m.obj, "Matrix.Format", "m"); err != nil {
		return format.Auto, err
	}
	if err := m.obj.engine().force("Matrix.Format"); err != nil {
		return format.Auto, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushPendingLocked()
	if m.forced != format.Auto {
		return m.forced, nil
	}
	return format.Choose(m.nr, m.nc, m.nnzLocked(), m.lastHint()), nil
}

// dims returns the logical dimensions under the object lock. Resize updates
// the metadata eagerly from the caller's goroutine while previously enqueued
// operations may still be executing on flush workers, so any read that can
// run concurrently with a user-side Resize — deferred closures, accessors —
// must go through here rather than touching m.nr/m.nc bare.
func (m *Matrix[D]) dims() (int, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nr, m.nc
}

// NRows reports the number of rows (GrB_Matrix_nrows); never forces.
func (m *Matrix[D]) NRows() (int, error) {
	if err := objOK(&m.obj, "Matrix.NRows", "m"); err != nil {
		return 0, err
	}
	nr, _ := m.dims()
	return nr, nil
}

// NCols reports the number of columns (GrB_Matrix_ncols); never forces.
func (m *Matrix[D]) NCols() (int, error) {
	if err := objOK(&m.obj, "Matrix.NCols", "m"); err != nil {
		return 0, err
	}
	_, nc := m.dims()
	return nc, nil
}

// NVals reports the number of stored elements (GrB_Matrix_nvals). Forces
// completion of the pending sequence.
func (m *Matrix[D]) NVals() (int, error) {
	if err := objOK(&m.obj, "Matrix.NVals", "m"); err != nil {
		return 0, err
	}
	if err := m.obj.engine().force("Matrix.NVals"); err != nil {
		return 0, err
	}
	if err := invalidMark(&m.obj, "Matrix.NVals"); err != nil {
		return 0, err
	}
	// Count from whichever form is resident rather than via mdat, so a
	// bitmap-primary matrix is not converted just to be counted.
	m.mu.Lock()
	m.flushPendingLocked()
	n := m.nnzLocked()
	m.mu.Unlock()
	return n, nil
}

// Clear removes all stored elements (GrB_Matrix_clear). May defer.
func (m *Matrix[D]) Clear() error {
	if err := objOK(&m.obj, "Matrix.Clear", "m"); err != nil {
		return err
	}
	return enqueue("Matrix.Clear", &m.obj, nil, true, func() error {
		// Executes on a flush worker; read the dimensions under the lock in
		// case the user goroutine Resizes while the flush is in flight.
		nr, nc := m.dims()
		m.setData(sparse.NewCSR[D](nr, nc))
		return nil
	})
}

// Dup creates a new matrix with the same domain, dimensions, and content
// (GrB_Matrix_dup). The copy may defer.
func (m *Matrix[D]) Dup() (*Matrix[D], error) {
	if err := objOK(&m.obj, "Matrix.Dup", "m"); err != nil {
		return nil, err
	}
	w := &Matrix[D]{nr: m.nr, nc: m.nc, data: sparse.NewCSR[D](m.nr, m.nc), forced: m.forced}
	w.initMatrix()
	w.obj.ctx = m.obj.ctx // the copy lives in the source's execution context
	m.mu.Lock()
	w.spolicy = m.spolicy
	m.mu.Unlock()
	err := enqueue("Matrix.Dup", &w.obj, []*obj{&m.obj}, true, func() error {
		w.setData(m.mdat().Clone())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return w, nil
}

// Resize changes the dimensions, dropping out-of-range elements (spec 1.3
// extension). Metadata updates eagerly; the storage trim may defer.
func (m *Matrix[D]) Resize(nrows, ncols int) error {
	if err := objOK(&m.obj, "Matrix.Resize", "m"); err != nil {
		return err
	}
	if nrows <= 0 || ncols <= 0 {
		return errf(InvalidValue, "Matrix.Resize", "dimensions must be positive, got %dx%d", nrows, ncols)
	}
	// The metadata write is eager — NRows/NCols reflect the new shape
	// immediately, and a later rollback keeps it (only storage is restored) —
	// but it must happen under the object lock: deferred operations from
	// before this call may still be running on flush workers, and they read
	// the dimensions through dims().
	m.mu.Lock()
	m.nr, m.nc = nrows, ncols
	m.mu.Unlock()
	return enqueue("Matrix.Resize", &m.obj, nil, false, func() error {
		// Clone before trimming: the committed CSR must stay intact so the
		// executor's rollback restores the pre-Resize content on failure.
		d := m.mdat().Clone()
		d.Resize(nrows, ncols)
		m.setData(d)
		return nil
	})
}

// Build populates an empty matrix from coordinate arrays, combining
// duplicates with dup (GrB_Matrix_build; Figure 3 line 28). Non-opaque
// array inputs may not defer, so Build forces the pending sequence and
// executes immediately.
func (m *Matrix[D]) Build(rows, cols []int, values []D, dup BinaryOp[D, D, D]) error {
	const op = "Matrix.Build"
	if err := objOK(&m.obj, op, "m"); err != nil {
		return err
	}
	if len(rows) != len(cols) || len(rows) != len(values) {
		return errf(InvalidValue, op, "tuple arrays have unequal lengths %d/%d/%d", len(rows), len(cols), len(values))
	}
	for k := range rows {
		if rows[k] < 0 || rows[k] >= m.nr {
			return errf(InvalidIndex, op, "row index %d out of range [0,%d)", rows[k], m.nr)
		}
		if cols[k] < 0 || cols[k] >= m.nc {
			return errf(InvalidIndex, op, "column index %d out of range [0,%d)", cols[k], m.nc)
		}
	}
	if err := m.obj.engine().force(op); err != nil {
		return err
	}
	if err := invalidMark(&m.obj, op); err != nil {
		return err
	}
	if nnz := m.mdat().NNZ(); nnz != 0 {
		return errf(OutputNotEmpty, op, "matrix already has %d stored elements", nnz)
	}
	var dupF func(D, D) D
	if dup.Defined() {
		dupF = dup.F
	}
	built, ok := sparse.BuildCSR(m.nr, m.nc, rows, cols, values, dupF)
	if !ok {
		return errf(InvalidValue, op, "duplicate index with no dup operator")
	}
	m.setData(built)
	return nil
}

// SetElement stores x at (i, j) (GrB_Matrix_setElement). May defer.
func (m *Matrix[D]) SetElement(x D, i, j int) error {
	if err := objOK(&m.obj, "Matrix.SetElement", "m"); err != nil {
		return err
	}
	if i < 0 || i >= m.nr || j < 0 || j >= m.nc {
		return errf(InvalidIndex, "Matrix.SetElement", "(%d,%d) out of range %dx%d", i, j, m.nr, m.nc)
	}
	return enqueue("Matrix.SetElement", &m.obj, nil, false, func() error {
		m.mu.Lock()
		m.pending = append(m.pending, sparse.Tuple[D]{I: i, J: j, V: x})
		m.tcache = nil
		m.mu.Unlock()
		return nil
	})
}

// RemoveElement deletes the element at (i, j) if present
// (GrB_Matrix_removeElement).
func (m *Matrix[D]) RemoveElement(i, j int) error {
	if err := objOK(&m.obj, "Matrix.RemoveElement", "m"); err != nil {
		return err
	}
	if i < 0 || i >= m.nr || j < 0 || j >= m.nc {
		return errf(InvalidIndex, "Matrix.RemoveElement", "(%d,%d) out of range %dx%d", i, j, m.nr, m.nc)
	}
	return enqueue("Matrix.RemoveElement", &m.obj, nil, false, func() error {
		m.mu.Lock()
		m.pending = append(m.pending, sparse.Tuple[D]{I: i, J: j, Del: true})
		m.tcache = nil
		m.mu.Unlock()
		return nil
	})
}

// ExtractElement returns the element at (i, j) (GrB_Matrix_extractElement);
// absent elements return a NoValue error. Forces completion.
func (m *Matrix[D]) ExtractElement(i, j int) (D, error) {
	var zero D
	if err := objOK(&m.obj, "Matrix.ExtractElement", "m"); err != nil {
		return zero, err
	}
	if i < 0 || i >= m.nr || j < 0 || j >= m.nc {
		return zero, errf(InvalidIndex, "Matrix.ExtractElement", "(%d,%d) out of range %dx%d", i, j, m.nr, m.nc)
	}
	if err := m.obj.engine().force("Matrix.ExtractElement"); err != nil {
		return zero, err
	}
	if err := invalidMark(&m.obj, "Matrix.ExtractElement"); err != nil {
		return zero, err
	}
	if x, ok := m.mdat().Get(i, j); ok {
		return x, nil
	}
	return zero, errf(NoValue, "Matrix.ExtractElement", "no element stored at (%d,%d)", i, j)
}

// ExtractTuples copies the stored (row, col, value) triples out of the
// opaque object in row-major order (GrB_Matrix_extractTuples). Forces
// completion.
func (m *Matrix[D]) ExtractTuples() ([]int, []int, []D, error) {
	if err := objOK(&m.obj, "Matrix.ExtractTuples", "m"); err != nil {
		return nil, nil, nil, err
	}
	if err := m.obj.engine().force("Matrix.ExtractTuples"); err != nil {
		return nil, nil, nil, err
	}
	if err := invalidMark(&m.obj, "Matrix.ExtractTuples"); err != nil {
		return nil, nil, nil, err
	}
	// Record that this matrix feeds row-major iteration, biasing the
	// adaptive policy toward CSR on subsequent reads.
	m.noteHint(format.HintIterate)
	is, js, vals := m.mdat().Tuples()
	return is, js, vals, nil
}

// Free destroys the matrix (GrB_free). Pending operations complete first.
func (m *Matrix[D]) Free() error {
	if m == nil || !m.initialized {
		return nil
	}
	if err := m.obj.engine().force("Matrix.Free"); err != nil {
		return err
	}
	m.initialized = false
	m.data = nil
	m.tcache = nil
	m.bcache = nil
	m.hcache = nil
	m.delta = nil
	m.mcache = nil
	return nil
}

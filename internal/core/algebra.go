package core

// This file implements the algebraic object hierarchy of Figure 1: unary and
// binary operators, monoids, and semirings. The C API's triples of opaque
// handle + constructor + domains become generic structs whose type
// parameters are the domains, so domain compatibility is checked by the Go
// compiler rather than returned as GrB_DOMAIN_MISMATCH at run time.

// UnaryOp is a GraphBLAS unary operator F_u = ⟨D1, D2, f⟩ with
// f : D1 → D2 (Section III-B).
type UnaryOp[D1, D2 any] struct {
	Name string
	F    func(D1) D2
}

// Defined reports whether the operator has a function (the zero value is an
// absent operator, the analogue of GrB_NULL).
func (op UnaryOp[D1, D2]) Defined() bool { return op.F != nil }

// NewUnaryOp builds a unary operator from a function (GrB_UnaryOp_new).
func NewUnaryOp[D1, D2 any](name string, f func(D1) D2) (UnaryOp[D1, D2], error) {
	if f == nil {
		return UnaryOp[D1, D2]{}, errf(NullPointer, "NewUnaryOp", "nil function")
	}
	return UnaryOp[D1, D2]{Name: name, F: f}, nil
}

// BinaryOp is a GraphBLAS binary operator F_b = ⟨D1, D2, D3, ⊙⟩ with
// ⊙ : D1 × D2 → D3 (Section III-B).
type BinaryOp[D1, D2, D3 any] struct {
	Name string
	F    func(D1, D2) D3
}

// Defined reports whether the operator has a function; the zero value plays
// the role of GrB_NULL (e.g. "no accumulator").
func (op BinaryOp[D1, D2, D3]) Defined() bool { return op.F != nil }

// NewBinaryOp builds a binary operator from a function (GrB_BinaryOp_new).
func NewBinaryOp[D1, D2, D3 any](name string, f func(D1, D2) D3) (BinaryOp[D1, D2, D3], error) {
	if f == nil {
		return BinaryOp[D1, D2, D3]{}, errf(NullPointer, "NewBinaryOp", "nil function")
	}
	return BinaryOp[D1, D2, D3]{Name: name, F: f}, nil
}

// NoAccum is the explicit "do not accumulate" accumulator argument, the
// analogue of passing GrB_NULL for accum in the C API.
func NoAccum[D any]() BinaryOp[D, D, D] { return BinaryOp[D, D, D]{} }

// IndexUnaryOp maps (value, row, col) → result. It is the index-aware
// operator later GraphBLAS revisions added for select/apply; provided here
// as a documented extension because the algorithm suite needs structural
// selections (e.g. the lower triangle for triangle counting). For vectors
// the column argument is always 0.
type IndexUnaryOp[D1, D2 any] struct {
	Name string
	F    func(v D1, i, j int) D2
}

// Defined reports whether the operator has a function.
func (op IndexUnaryOp[D1, D2]) Defined() bool { return op.F != nil }

// Monoid is a GraphBLAS monoid M = ⟨D1, ⊙, 0⟩: an associative operator on a
// single domain with an identity element (Section III-B). Terminal, when
// non-nil, recognizes the monoid's annihilator ("terminal") value — e.g.
// true for ⟨∨⟩, +∞ for ⟨max⟩ — letting reductions stop early once the
// accumulator can no longer change. It is a performance hint with no
// semantic effect.
type Monoid[D any] struct {
	Op       BinaryOp[D, D, D]
	Identity D
	Terminal func(D) bool
}

// Defined reports whether the monoid has an operation.
func (m Monoid[D]) Defined() bool { return m.Op.Defined() }

// NewMonoid builds a monoid from a binary operator with all three domains
// equal and its identity element (GrB_Monoid_new). Associativity cannot be
// checked mechanically and is the caller's obligation, as in the C API.
func NewMonoid[D any](op BinaryOp[D, D, D], identity D) (Monoid[D], error) {
	if !op.Defined() {
		return Monoid[D]{}, errf(UninitializedObject, "NewMonoid", "operator not initialized")
	}
	return Monoid[D]{Op: op, Identity: identity}, nil
}

// NewMonoidWithTerminal builds a monoid whose annihilator value is
// recognized by terminal, enabling early-exit reductions (extension).
func NewMonoidWithTerminal[D any](op BinaryOp[D, D, D], identity D, terminal func(D) bool) (Monoid[D], error) {
	m, err := NewMonoid(op, identity)
	if err != nil {
		return m, err
	}
	if terminal == nil {
		return m, errf(NullPointer, "NewMonoidWithTerminal", "nil terminal predicate")
	}
	m.Terminal = terminal
	return m, nil
}

// Semiring is a GraphBLAS semiring S = ⟨D1, D2, D3, ⊕, ⊗, 0⟩ built from an
// additive monoid over D3 and a multiplicative binary operator
// D1 × D2 → D3 (Section III-B and Figure 1). Unlike the classical algebraic
// semiring it permits three distinct domains and needs no multiplicative
// identity.
type Semiring[D1, D2, D3 any] struct {
	Add Monoid[D3]
	Mul BinaryOp[D1, D2, D3]
}

// Defined reports whether both components are present.
func (s Semiring[D1, D2, D3]) Defined() bool { return s.Add.Defined() && s.Mul.Defined() }

// NewSemiring builds a semiring from an additive monoid and a multiplicative
// operator (GrB_Semiring_new).
func NewSemiring[D1, D2, D3 any](add Monoid[D3], mul BinaryOp[D1, D2, D3]) (Semiring[D1, D2, D3], error) {
	if !add.Defined() {
		return Semiring[D1, D2, D3]{}, errf(UninitializedObject, "NewSemiring", "additive monoid not initialized")
	}
	if !mul.Defined() {
		return Semiring[D1, D2, D3]{}, errf(UninitializedObject, "NewSemiring", "multiplicative operator not initialized")
	}
	return Semiring[D1, D2, D3]{Add: add, Mul: mul}, nil
}

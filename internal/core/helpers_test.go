package core

import (
	"math/rand"
	"os"
	"testing"
)

// TestMain initializes the GraphBLAS context once for the package; tests
// that need a specific mode reset and re-init via withMode.
func TestMain(m *testing.M) {
	ResetForTesting()
	if err := Init(Blocking); err != nil {
		panic(err)
	}
	os.Exit(m.Run())
}

// withMode runs f under a fresh context in the given mode and restores a
// blocking context afterwards.
func withMode(t *testing.T, mode Mode, f func()) {
	t.Helper()
	ResetForTesting()
	if err := Init(mode); err != nil {
		t.Fatalf("Init(%v): %v", mode, err)
	}
	defer func() {
		ResetForTesting()
		if err := Init(Blocking); err != nil {
			t.Fatalf("re-Init: %v", err)
		}
	}()
	f()
}

// key is a dense-model coordinate.
type key struct{ i, j int }

// dmat is the dense reference model: only stored entries appear.
type dmat map[key]float64

// newTestMatrix builds a Matrix[float64] and its dense model with the given
// fill probability.
func newTestMatrix(t *testing.T, rng *rand.Rand, nr, nc int, p float64) (*Matrix[float64], dmat) {
	t.Helper()
	m, err := NewMatrix[float64](nr, nc)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	d := dmat{}
	var is, js []int
	var vs []float64
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			if rng.Float64() < p {
				v := float64(rng.Intn(9) + 1)
				d[key{i, j}] = v
				is = append(is, i)
				js = append(js, j)
				vs = append(vs, v)
			}
		}
	}
	if err := m.Build(is, js, vs, NoAccum[float64]()); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m, d
}

// newTestMask builds a Matrix[bool] mask plus dense models of its stored
// structure and effective (stored-and-true) pattern.
func newTestMask(t *testing.T, rng *rand.Rand, nr, nc int, pStored, pTrue float64) (*Matrix[bool], map[key]bool, map[key]bool) {
	t.Helper()
	m, err := NewMatrix[bool](nr, nc)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	stored := map[key]bool{}
	eff := map[key]bool{}
	var is, js []int
	var vs []bool
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			if rng.Float64() < pStored {
				val := rng.Float64() < pTrue
				stored[key{i, j}] = true
				if val {
					eff[key{i, j}] = true
				}
				is = append(is, i)
				js = append(js, j)
				vs = append(vs, val)
			}
		}
	}
	if err := m.Build(is, js, vs, NoAccum[bool]()); err != nil {
		t.Fatalf("Build mask: %v", err)
	}
	return m, stored, eff
}

// denseOf extracts the dense model of a matrix.
func denseOf(t *testing.T, m *Matrix[float64]) dmat {
	t.Helper()
	is, js, vs, err := m.ExtractTuples()
	if err != nil {
		t.Fatalf("ExtractTuples: %v", err)
	}
	d := dmat{}
	for k := range is {
		d[key{is[k], js[k]}] = vs[k]
	}
	return d
}

// equalDense compares a matrix against the dense model.
func equalDense(t *testing.T, got dmat, want dmat, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: nvals got %d want %d", label, len(got), len(want))
	}
	for k, v := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: missing entry (%d,%d)=%v", label, k.i, k.j, v)
			continue
		}
		if g != v {
			t.Errorf("%s: entry (%d,%d) got %v want %v", label, k.i, k.j, g, v)
		}
	}
	for k, g := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: spurious entry (%d,%d)=%v", label, k.i, k.j, g)
		}
	}
}

// oracleMxMWrite implements the full Figure 2 pipeline on dense models:
// T = A' ⊕.⊗ B' (plus-times), Z = accum ? C⊙T : T, then the mask/replace
// write into C.
func oracleMxMWrite(c dmat, a dmat, anr, anc int, b dmat, bnc int,
	tranA, tranB bool, stored, eff map[key]bool, useMask, scmp bool,
	accum bool, replace bool) dmat {

	av := func(i, k int) (float64, bool) {
		if tranA {
			v, ok := a[key{k, i}]
			return v, ok
		}
		v, ok := a[key{i, k}]
		return v, ok
	}
	bv := func(k, j int) (float64, bool) {
		if tranB {
			v, ok := b[key{j, k}]
			return v, ok
		}
		v, ok := b[key{k, j}]
		return v, ok
	}
	m, l, n := anr, anc, bnc
	if tranA {
		m, l = anc, anr
	}
	_ = l
	inner := anc
	if tranA {
		inner = anr
	}
	t := dmat{}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			has := false
			for k := 0; k < inner; k++ {
				x, ok1 := av(i, k)
				y, ok2 := bv(k, j)
				if ok1 && ok2 {
					sum += x * y
					has = true
				}
			}
			if has {
				t[key{i, j}] = sum
			}
		}
	}
	z := dmat{}
	if accum {
		for k, v := range c {
			z[k] = v
		}
		for k, v := range t {
			if cv, ok := z[k]; ok {
				z[k] = cv + v
			} else {
				z[k] = v
			}
		}
	} else {
		z = t
	}
	out := dmat{}
	allow := func(k key) bool {
		if !useMask {
			return true
		}
		if scmp {
			return !stored[k]
		}
		return eff[k]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			k := key{i, j}
			if allow(k) {
				if v, ok := z[k]; ok {
					out[k] = v
				}
			} else if !replace {
				if v, ok := c[k]; ok {
					out[k] = v
				}
			}
		}
	}
	return out
}

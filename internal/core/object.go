package core

import (
	"sync/atomic"

	"graphblas/internal/format"
)

// obj is the non-generic base embedded in every opaque GraphBLAS object. It
// carries the identity used by the nonblocking engine's dependence tracking
// and the invalid-object state of the error model (Section V).
type obj struct {
	id          uint64
	err         error
	initialized bool
	// snapshot captures the object's committed store (pointers, not
	// payloads — stores are immutable once committed) and returns a closure
	// restoring it. The executor takes a snapshot before each kernel and
	// rolls back on failure, so an output object is never observed
	// half-written: it holds its prior committed contents (invalid but
	// restorable, Section V) or the new result. Registered by the typed
	// constructors; nil for objects with no transactional store.
	snapshot func() func()
	// hint records how the object was last — or, after hint propagation at
	// flush time, will next be — consumed. The storage engine's adaptive
	// policy reads it when deciding which layout to materialize. Atomic
	// because the flushing goroutine stamps it while kernels may read it.
	hint atomic.Uint32
}

// noteHint records a consumer hint on the object.
func (o *obj) noteHint(h format.OpHint) { o.hint.Store(uint32(h)) }

// lastHint returns the most recently recorded consumer hint.
func (o *obj) lastHint() format.OpHint { return format.OpHint(o.hint.Load()) }

// initObj stamps a fresh identity.
func (o *obj) initObj() {
	o.id = nextID()
	o.initialized = true
}

// objOK reports the standard per-argument API checks: the handle is non-nil
// and the object initialized.
func objOK(o *obj, op, arg string) error {
	if o == nil {
		return errf(UninitializedObject, op, "%s is nil", arg)
	}
	if !o.initialized {
		return errf(UninitializedObject, op, "%s has not been initialized (freed?)", arg)
	}
	return nil
}

// Wait completes all pending computations involving the object (the
// object-scoped GrB_wait of spec 1.3+). This engine tracks dependencies at
// sequence granularity, so it conservatively completes the whole pending
// sequence — a conforming implementation choice.
func (m *Matrix[D]) Wait() error {
	if err := objOK(&m.obj, "Matrix.Wait", "m"); err != nil {
		return err
	}
	if err := force("Matrix.Wait"); err != nil {
		return err
	}
	if m.err != nil {
		return errf(InvalidObject, "Matrix.Wait", "%v", m.err)
	}
	return nil
}

// Wait completes all pending computations involving the vector; see
// Matrix.Wait.
func (v *Vector[D]) Wait() error {
	if err := objOK(&v.obj, "Vector.Wait", "v"); err != nil {
		return err
	}
	if err := force("Vector.Wait"); err != nil {
		return err
	}
	if v.err != nil {
		return errf(InvalidObject, "Vector.Wait", "%v", v.err)
	}
	return nil
}

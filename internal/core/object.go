package core

import (
	"sync/atomic"

	"graphblas/internal/format"
)

// obj is the non-generic base embedded in every opaque GraphBLAS object. It
// carries the identity used by the nonblocking engine's dependence tracking
// and the invalid-object state of the error model (Section V).
type obj struct {
	id          uint64
	err         error
	initialized bool
	// ctx binds the object to the execution context that owns it: nil means
	// the package-level global context (the paper's one-per-program rule);
	// non-nil means an embedded Instance (the sharding extension). Operations
	// route through their output object's context, so instance-bound work
	// never serializes against the global queue.
	ctx *context
	// snapshot captures the object's committed store (pointers, not
	// payloads — stores are immutable once committed) and returns a closure
	// restoring it. The executor takes a snapshot before each kernel and
	// rolls back on failure, so an output object is never observed
	// half-written: it holds its prior committed contents (invalid but
	// restorable, Section V) or the new result. Registered by the typed
	// constructors; nil for objects with no transactional store.
	snapshot func() func()
	// hint records how the object was last — or, after hint propagation at
	// flush time, will next be — consumed. The storage engine's adaptive
	// policy reads it when deciding which layout to materialize. Atomic
	// because the flushing goroutine stamps it while kernels may read it.
	hint atomic.Uint32
}

// engine returns the execution context the object is bound to.
func (o *obj) engine() *context {
	if o.ctx == nil {
		return &global
	}
	return o.ctx
}

// noteHint records a consumer hint on the object.
func (o *obj) noteHint(h format.OpHint) { o.hint.Store(uint32(h)) }

// lastHint returns the most recently recorded consumer hint.
func (o *obj) lastHint() format.OpHint { return format.OpHint(o.hint.Load()) }

// initObj stamps a fresh identity.
func (o *obj) initObj() {
	o.id = nextID()
	o.initialized = true
}

// objOK reports the standard per-argument API checks: the handle is non-nil
// and the object initialized.
func objOK(o *obj, op, arg string) error {
	if o == nil {
		return errf(UninitializedObject, op, "%s is nil", arg)
	}
	if !o.initialized {
		return errf(UninitializedObject, op, "%s has not been initialized (freed?)", arg)
	}
	return nil
}

// invalidMark snapshots the object's invalid-state error under the engine
// lock and converts it to the standard API error. API methods consult the
// mark after force has returned — and released the lock — so a flush started
// by another goroutine may be rewriting o.err concurrently; the lock
// round-trip orders this read against that write.
func invalidMark(o *obj, op string) error {
	c := o.engine()
	c.mu.Lock()
	err := o.err
	c.mu.Unlock()
	if err != nil {
		return errf(InvalidObject, op, "%v", err)
	}
	return nil
}

// Wait completes all pending computations involving the object (the
// object-scoped GrB_wait of spec 1.3+). This engine tracks dependencies at
// sequence granularity, so it conservatively completes the whole pending
// sequence — a conforming implementation choice.
func (m *Matrix[D]) Wait() error {
	if err := objOK(&m.obj, "Matrix.Wait", "m"); err != nil {
		return err
	}
	if err := m.obj.engine().force("Matrix.Wait"); err != nil {
		return err
	}
	return invalidMark(&m.obj, "Matrix.Wait")
}

// Wait completes all pending computations involving the vector; see
// Matrix.Wait.
func (v *Vector[D]) Wait() error {
	if err := objOK(&v.obj, "Vector.Wait", "v"); err != nil {
		return err
	}
	if err := v.obj.engine().force("Vector.Wait"); err != nil {
		return err
	}
	return invalidMark(&v.obj, "Vector.Wait")
}

// revalidate is the shared body of Matrix.Revalidate / Vector.Revalidate: it
// quiesces the pending sequence, then clears the object's invalid mark.
func revalidate(o *obj, op, arg string) error {
	if err := objOK(o, op, arg); err != nil {
		return err
	}
	// Complete the pending sequence first so no queued operation re-marks the
	// object after the clear. The flush's own error, if any, is exactly the
	// failure being acknowledged, so it is not propagated — unless the
	// context itself is unusable.
	c := o.engine()
	if err := c.force(op); InfoOf(err) == UninitializedContext {
		return err
	}
	c.mu.Lock()
	o.err = nil
	c.mu.Unlock()
	return nil
}

// Revalidate accepts an invalid-but-restorable object's rolled-back committed
// content as current, clearing the invalid mark without the full overwrite
// the error model otherwise demands. The transactional executor guarantees
// that a failed operation rolls its output back to the prior committed store
// and that an abandoned (Canceled) operation never ran at all — either way
// the content is a consistent committed state; what the invalid mark records
// is that a *requested* mutation did not happen. A caller that can
// re-establish its own invariants — e.g. a streaming writer whose update
// batches are last-wins idempotent and can simply be re-applied — may accept
// the rolled-back state and continue. This is the recovery path a concurrent
// serving layer needs when some other request's deadline abandons a shared
// flush: without it, one expired deadline would poison the writer's matrix
// permanently, since merge-mode absorbs never full-overwrite.
func (m *Matrix[D]) Revalidate() error {
	return revalidate(&m.obj, "Matrix.Revalidate", "m")
}

// Revalidate clears the vector's invalid mark after the caller has
// re-established its invariants; see Matrix.Revalidate.
func (v *Vector[D]) Revalidate() error {
	return revalidate(&v.obj, "Vector.Revalidate", "v")
}

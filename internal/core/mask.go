package core

import "graphblas/internal/sparse"

// Mask semantics (Sections III-C and VI): a write mask is any GraphBLAS
// vector or matrix; the positions that "exist and are true" control which
// results reach the output. The C API performs an implicit cast of the mask
// domain to bool; this binding reproduces that with a runtime truthiness
// interpretation: bool is itself, numeric types are v != 0, and any other
// domain counts every stored element as true (a purely structural mask).
// The structural complement (GrB_SCMP) complements the *structure* — the
// set of stored positions — exactly as the paper defines it.
//
// Passing a nil *Vector or *Matrix is the analogue of GrB_NULL: no mask.
// NoMask is provided for readability at call sites.

// NoMask is the "no write mask" argument (GrB_NULL) for operations on
// matrix outputs.
var NoMask *Matrix[bool]

// NoMaskV is the "no write mask" argument (GrB_NULL) for operations on
// vector outputs.
var NoMaskV *Vector[bool]

// truthy is the implicit bool cast the C API applies to mask values.
func truthy[T any](v T) bool {
	switch x := any(v).(type) {
	case bool:
		return x
	case int:
		return x != 0
	case int8:
		return x != 0
	case int16:
		return x != 0
	case int32:
		return x != 0
	case int64:
		return x != 0
	case uint:
		return x != 0
	case uint8:
		return x != 0
	case uint16:
		return x != 0
	case uint32:
		return x != 0
	case uint64:
		return x != 0
	case float32:
		return x != 0
	case float64:
		return x != 0
	default:
		return true // user-defined domains: structural interpretation
	}
}

// truthyIdx returns the indices (positions into idx) whose values are
// truthy, with fast paths for common mask domains. It returns idx itself
// when every value is truthy.
func truthyIdx[T any](idx []int, val []T) []int {
	switch vs := any(val).(type) {
	case []bool:
		all := true
		for _, b := range vs {
			if !b {
				all = false
				break
			}
		}
		if all {
			return idx
		}
		eff := make([]int, 0, len(idx))
		for k, b := range vs {
			if b {
				eff = append(eff, idx[k])
			}
		}
		return eff
	case []int32:
		return truthyIdxNum(idx, vs)
	case []int64:
		return truthyIdxNum(idx, vs)
	case []float32:
		return truthyIdxNum(idx, vs)
	case []float64:
		return truthyIdxNum(idx, vs)
	}
	all := true
	for _, v := range val {
		if !truthy(v) {
			all = false
			break
		}
	}
	if all {
		return idx
	}
	eff := make([]int, 0, len(idx))
	for k, v := range val {
		if truthy(v) {
			eff = append(eff, idx[k])
		}
	}
	return eff
}

func truthyIdxNum[T int32 | int64 | float32 | float64](idx []int, val []T) []int {
	all := true
	for _, v := range val {
		if v == 0 {
			all = false
			break
		}
	}
	if all {
		return idx
	}
	eff := make([]int, 0, len(idx))
	for k, v := range val {
		if v != 0 {
			eff = append(eff, idx[k])
		}
	}
	return eff
}

// resolveVecMask converts a vector mask object into the kernel form. Must
// run at operation-execution time so the mask content is current. A nil
// mask returns nil.
func resolveVecMask[DM any](mask *Vector[DM], comp bool) *sparse.VecMask {
	if mask == nil {
		return nil
	}
	d := mask.vdat()
	return &sparse.VecMask{
		N:         d.N,
		Idx:       truthyIdx(d.Idx, d.Val),
		Structure: d.Idx,
		Comp:      comp,
	}
}

// resolveMatMask converts a matrix mask object into the kernel pattern
// form. Rows whose values are all truthy alias the mask storage directly.
func resolveMatMask[DM any](mask *Matrix[DM], comp bool) *sparse.MatMask {
	if mask == nil {
		return nil
	}
	d := mask.mdat()
	mm := &sparse.MatMask{
		NCols:  d.NCols,
		StrPtr: d.Ptr,
		StrIdx: d.ColIdx,
		Comp:   comp,
	}
	eff := truthyIdx(d.ColIdx[:d.NNZ()], d.Val[:d.NNZ()])
	if len(eff) == d.NNZ() {
		// Every stored value truthy: effective pattern == structure.
		mm.EffPtr, mm.EffIdx = d.Ptr, d.ColIdx
		return mm
	}
	// Rebuild a row pointer for the filtered pattern. Walk rows and count
	// how many of each row's entries survived; the filtered indices remain
	// in row-major order because truthyIdx preserves order.
	effPtr := make([]int, d.NRows+1)
	pos := 0
	for i := 0; i < d.NRows; i++ {
		// Count survivors of row i by walking its value range again.
		cnt := 0
		for p := d.Ptr[i]; p < d.Ptr[i+1]; p++ {
			if truthy(d.Val[p]) {
				cnt++
			}
		}
		pos += cnt
		effPtr[i+1] = pos
	}
	mm.EffPtr, mm.EffIdx = effPtr, eff
	return mm
}

// maskReads appends the mask object to an operation's read set when a mask
// is present; obj handles of differing generic instantiations share the
// non-generic base.
func maskReadsV[DM any](reads []*obj, mask *Vector[DM]) []*obj {
	if mask != nil {
		reads = append(reads, &mask.obj)
	}
	return reads
}

func maskReadsM[DM any](reads []*obj, mask *Matrix[DM]) []*obj {
	if mask != nil {
		reads = append(reads, &mask.obj)
	}
	return reads
}

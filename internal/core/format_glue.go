package core

import (
	"graphblas/internal/faults"
	"graphblas/internal/format"
	"graphblas/internal/obs"
	"graphblas/internal/parallel"
	"graphblas/internal/sparse"
)

// This file connects the multiply family to the multi-format storage engine
// (internal/format): each operation asks its matrix operand which layout the
// engine selects for the access pattern at hand and dispatches to the
// matching kernel, with a further specialized path when the semiring is the
// built-in arithmetic ⟨+,×⟩ over a machine-numeric domain.

// plusTimesSemiring reports whether op is the built-in arithmetic ⟨+,×⟩
// semiring over one of the domains the specialized kernels support. The
// builtin operator names are necessary but not trusted alone — a user could
// register an operator named "times" with different semantics — so the
// functions are sample-evaluated (2·3 = 3·2 = 6, 2+3 = 5) before the fast
// path is taken. The dynamic type assertion doubles as the check that all
// three domains coincide.
func plusTimesSemiring[DA, DB, DC any](op Semiring[DA, DB, DC]) bool {
	if op.Mul.Name != "times" || op.Add.Op.Name != "plus" {
		return false
	}
	switch mul := any(op.Mul.F).(type) {
	case func(float64, float64) float64:
		add, ok := any(op.Add.Op.F).(func(float64, float64) float64)
		return ok && mul(2, 3) == 6 && mul(3, 2) == 6 && add(2, 3) == 5
	case func(float32, float32) float32:
		add, ok := any(op.Add.Op.F).(func(float32, float32) float32)
		return ok && mul(2, 3) == 6 && mul(3, 2) == 6 && add(2, 3) == 5
	case func(int, int) int:
		add, ok := any(op.Add.Op.F).(func(int, int) int)
		return ok && mul(2, 3) == 6 && mul(3, 2) == 6 && add(2, 3) == 5
	case func(int32, int32) int32:
		add, ok := any(op.Add.Op.F).(func(int32, int32) int32)
		return ok && mul(2, 3) == 6 && mul(3, 2) == 6 && add(2, 3) == 5
	case func(int64, int64) int64:
		add, ok := any(op.Add.Op.F).(func(int64, int64) int64)
		return ok && mul(2, 3) == 6 && mul(3, 2) == 6 && add(2, 3) == 5
	}
	return false
}

// runFallible executes a format-engine fast path and converts a recoverable
// injected fault raised inside it — an allocation denial from the governor
// or an OOM/KernelErr from the fault plan, possibly wrapped by a worker
// goroutine's panicBox — into a non-nil fault return, so the caller can
// retry once on the generic CSR path before any error is surfaced. Genuine
// panics and Panic-kind faults propagate: those model faulty user-operator
// code, which must not be silently retried (the operator already ran on
// some elements).
func runFallible[T any](f func() (T, bool)) (out T, used bool, fault *faults.Fault) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		v := r
		if pv, ok := v.(*parallel.Panic); ok {
			v = pv.Val
		}
		if fl, ok := v.(*faults.Fault); ok && fl.Kind != faults.PanicFault {
			var zero T
			out, used, fault = zero, false, fl
			return
		}
		panic(r)
	}()
	out, used = f()
	return
}

// dotMxVDispatch runs the pull-style w = A ⊕.⊗ u kernel in the layout the
// storage engine picks for A: the specialized bitmap arithmetic kernel when
// the semiring is genuinely ⟨+,×⟩, the generic bitmap kernel, the
// hypersparse kernel, or the CSR reference kernel. A fast-path kernel that
// fails with a recoverable fault (injected failure or governed allocation
// denial) is retried once on the CSR reference path. sp (nil when tracing is
// off) records the layout that actually produced the result and any retry.
func dotMxVDispatch[DC, DA, DU any](a *Matrix[DA], ud *sparse.Vec[DU], op Semiring[DA, DU, DC], vm *sparse.VecMask, sp *obs.Span) *sparse.Vec[DC] {
	r, ok, fault := runFallible(func() (*sparse.Vec[DC], bool) {
		if bm := a.bitmapForRead(format.HintMxV); bm != nil {
			fmtBitmapOps.Add(1)
			if plusTimesSemiring(op) {
				if r, ok := format.TryDotMxVPlusTimes(bm, ud, vm); ok {
					fmtFastOps.Add(1)
					sp.NoteLayout("bitmap-fast")
					return r.(*sparse.Vec[DC]), true
				}
			}
			sp.NoteLayout("bitmap")
			return format.DotMxVBitmap(bm, ud, op.Mul.F, op.Add.Op.F, vm), true
		}
		if hy := a.hyperForRead(format.HintMxV); hy != nil {
			fmtHyperOps.Add(1)
			sp.NoteLayout("hyper")
			return format.DotMxVHyper(hy, ud, op.Mul.F, op.Add.Op.F, vm), true
		}
		return nil, false
	})
	if ok {
		return r
	}
	if fault != nil {
		execRetries.Add(1)
		sp.NoteRetry()
	}
	sp.NoteLayout("csr")
	return sparse.DotMxV(a.mdat(), ud, op.Mul.F, op.Add.Op.F, vm)
}

// pushMxVDispatch runs the push-style w = Aᵀ ⊕.⊗ u kernel, using the
// hypersparse row list when the engine picks it for A: frontier expansion
// over a nearly-empty matrix then skips the empty-row scan entirely. A
// failed hypersparse kernel is retried once on the CSR path. sp records the
// consumed layout and any retry, as in dotMxVDispatch.
func pushMxVDispatch[DC, DA, DU any](a *Matrix[DA], ud *sparse.Vec[DU], mul func(DA, DU) DC, add func(DC, DC) DC, vm *sparse.VecMask, sp *obs.Span) *sparse.Vec[DC] {
	r, ok, fault := runFallible(func() (*sparse.Vec[DC], bool) {
		if hy := a.hyperForRead(format.HintMxV); hy != nil {
			fmtHyperOps.Add(1)
			sp.NoteLayout("hyper")
			return format.PushMxVHyper(hy, ud, mul, add, vm), true
		}
		return nil, false
	})
	if ok {
		return r
	}
	if fault != nil {
		execRetries.Add(1)
		sp.NoteRetry()
	}
	sp.NoteLayout("csr")
	return sparse.PushMxV(a.mdat(), ud, mul, add, vm)
}

package sparse

import (
	"graphblas/internal/faults"
	"graphblas/internal/obs"
)

// VecMask is a pre-resolved one-dimensional mask: Idx lists, in increasing
// order, the positions whose stored mask value is true (the paper's "exist
// and are true" rule). Comp selects the structural complement (GrB_SCMP):
// note the complement is taken over the *structure*, so Structure must then
// list all stored positions regardless of value. The core package resolves
// value truthiness before kernels run.
type VecMask struct {
	N         int
	Idx       []int // effective positions: stored-and-true
	Structure []int // all stored positions (basis of the structural complement)
	Comp      bool
}

// allowsCursor is a merge cursor for testing mask membership while scanning
// indices in increasing order; amortized O(1) per query.
type allowsCursor struct {
	mask *VecMask
	p    int
}

func (a *allowsCursor) allows(i int) bool {
	if a.mask == nil {
		return true
	}
	set := a.mask.Idx
	if a.mask.Comp {
		set = a.mask.Structure
	}
	for a.p < len(set) && set[a.p] < i {
		a.p++
	}
	member := a.p < len(set) && set[a.p] == i
	if a.mask.Comp {
		return !member
	}
	return member
}

// VecUnion computes the eWiseAdd merge of a and b: positions in both get
// add(a, b); positions in exactly one keep their value.
func VecUnion[D any](a, b *Vec[D], add func(D, D) D) *Vec[D] {
	idx, val := unionRow(a.Idx, a.Val, b.Idx, b.Val, add,
		make([]int, 0, len(a.Idx)+len(b.Idx)), make([]D, 0, len(a.Idx)+len(b.Idx)))
	return &Vec[D]{N: a.N, Idx: idx, Val: val}
}

// unionRow is the slice-level eWiseAdd merge, appending to outIdx/outVal.
func unionRow[D any](aIdx []int, aVal []D, bIdx []int, bVal []D, add func(D, D) D, outIdx []int, outVal []D) ([]int, []D) {
	pa, pb := 0, 0
	for pa < len(aIdx) && pb < len(bIdx) {
		switch {
		case aIdx[pa] < bIdx[pb]:
			outIdx = append(outIdx, aIdx[pa])
			outVal = append(outVal, aVal[pa])
			pa++
		case aIdx[pa] > bIdx[pb]:
			outIdx = append(outIdx, bIdx[pb])
			outVal = append(outVal, bVal[pb])
			pb++
		default:
			outIdx = append(outIdx, aIdx[pa])
			outVal = append(outVal, add(aVal[pa], bVal[pb]))
			pa++
			pb++
		}
	}
	outIdx = append(outIdx, aIdx[pa:]...)
	outVal = append(outVal, aVal[pa:]...)
	outIdx = append(outIdx, bIdx[pb:]...)
	outVal = append(outVal, bVal[pb:]...)
	return outIdx, outVal
}

// VecIntersect computes the eWiseMult merge of a and b: only positions
// present in both survive, combined with mul. The three-domain form mirrors
// the paper's set-intersection definition of ⊗.
func VecIntersect[DA, DB, DC any](a *Vec[DA], b *Vec[DB], mul func(DA, DB) DC) *Vec[DC] {
	idx, val := intersectRow(a.Idx, a.Val, b.Idx, b.Val, mul, nil, nil)
	return &Vec[DC]{N: a.N, Idx: idx, Val: val}
}

// intersectRow is the slice-level eWiseMult merge, appending to its output
// slices.
func intersectRow[DA, DB, DC any](aIdx []int, aVal []DA, bIdx []int, bVal []DB, mul func(DA, DB) DC, outIdx []int, outVal []DC) ([]int, []DC) {
	pa, pb := 0, 0
	for pa < len(aIdx) && pb < len(bIdx) {
		switch {
		case aIdx[pa] < bIdx[pb]:
			pa++
		case aIdx[pa] > bIdx[pb]:
			pb++
		default:
			outIdx = append(outIdx, aIdx[pa])
			outVal = append(outVal, mul(aVal[pa], bVal[pb]))
			pa++
			pb++
		}
	}
	return outIdx, outVal
}

// VecApply maps f over the stored values of a, keeping the structure.
func VecApply[DA, DC any](a *Vec[DA], f func(DA) DC) *Vec[DC] {
	out := &Vec[DC]{N: a.N, Idx: append([]int(nil), a.Idx...), Val: make([]DC, len(a.Val))}
	for k, v := range a.Val {
		out.Val[k] = f(v)
	}
	return out
}

// VecApplyIndex maps f(value, index) over the stored entries of a.
func VecApplyIndex[DA, DC any](a *Vec[DA], f func(DA, int) DC) *Vec[DC] {
	out := &Vec[DC]{N: a.N, Idx: append([]int(nil), a.Idx...), Val: make([]DC, len(a.Val))}
	for k, v := range a.Val {
		out.Val[k] = f(v, a.Idx[k])
	}
	return out
}

// VecSelect keeps the entries of a for which pred(value, index) holds.
func VecSelect[D any](a *Vec[D], pred func(D, int) bool) *Vec[D] {
	out := &Vec[D]{N: a.N}
	for k, v := range a.Val {
		if pred(v, a.Idx[k]) {
			out.Idx = append(out.Idx, a.Idx[k])
			out.Val = append(out.Val, v)
		}
	}
	return out
}

// VecReduce folds the stored values of a with the monoid operation add
// starting from identity. Returns identity for an empty vector, with
// stored == false so callers can distinguish "no entries". A non-nil term
// predicate recognizes the monoid's annihilator and stops the fold early.
func VecReduce[D any](a *Vec[D], add func(D, D) D, identity D, term func(D) bool) (D, bool) {
	faults.Step("sparse.kernel.reduce.vec")
	done := obs.KernelStart("reduce.vec")
	acc := identity
	for _, v := range a.Val {
		acc = add(acc, v)
		if term != nil && term(acc) {
			break
		}
	}
	done(len(a.Val))
	return acc, len(a.Val) > 0
}

// MaskMergeVec applies the final write stage of the paper's operation
// pipeline (Section VI): given the old content c and the computed content z
// (already accumulated if an accumulator was supplied), produce the new
// content of the output under mask/replace semantics:
//
//	inside the mask:  take z's entry (or no entry where z has none);
//	outside the mask: keep c's entry unless replace is set.
//
// A nil mask admits every position and returns z itself: callers transfer
// ownership of z (every kernel in this package produces fresh storage, so
// this avoids an O(nnz) copy on the hot unmasked path). Callers holding a
// shared z must clone before passing it.
func MaskMergeVec[D any](c, z *Vec[D], mask *VecMask, replace bool) *Vec[D] {
	if mask == nil {
		return z
	}
	idx, val := maskMergeRow(c.Idx, c.Val, z.Idx, z.Val, mask, replace, nil, nil)
	return &Vec[D]{N: c.N, Idx: idx, Val: val}
}

// maskMergeRow is the slice-level mask merge shared by the vector operation
// and the row-parallel matrix write-back; results append to outIdx/outVal.
func maskMergeRow[D any](cIdx []int, cVal []D, zIdx []int, zVal []D, mask *VecMask, replace bool, outIdx []int, outVal []D) ([]int, []D) {
	cur := allowsCursor{mask: mask}
	pc, pz := 0, 0
	for pc < len(cIdx) || pz < len(zIdx) {
		var i int
		switch {
		case pc >= len(cIdx):
			i = zIdx[pz]
		case pz >= len(zIdx):
			i = cIdx[pc]
		case cIdx[pc] <= zIdx[pz]:
			i = cIdx[pc]
		default:
			i = zIdx[pz]
		}
		hasC := pc < len(cIdx) && cIdx[pc] == i
		hasZ := pz < len(zIdx) && zIdx[pz] == i
		if cur.allows(i) {
			if hasZ {
				outIdx = append(outIdx, i)
				outVal = append(outVal, zVal[pz])
			}
		} else if !replace && hasC {
			outIdx = append(outIdx, i)
			outVal = append(outVal, cVal[pc])
		}
		if hasC {
			pc++
		}
		if hasZ {
			pz++
		}
	}
	return outIdx, outVal
}

// WriteVec runs the full accumulate-then-mask write pipeline: z is
// accum==nil ? t : union(c, t, accum), then MaskMergeVec(c, z, mask, replace).
func WriteVec[D any](c, t *Vec[D], mask *VecMask, accum func(D, D) D, replace bool) *Vec[D] {
	z := t
	if accum != nil {
		z = VecUnion(c, t, accum)
	}
	return MaskMergeVec(c, z, mask, replace)
}

// ExtractVec computes w(k) = u(indices[k]); duplicate source indices are
// permitted. indices must be pre-validated to lie in [0, u.N).
func ExtractVec[D any](u *Vec[D], indices []int) *Vec[D] {
	out := &Vec[D]{N: len(indices)}
	for k, i := range indices {
		if v, ok := u.Get(i); ok {
			out.Idx = append(out.Idx, k)
			out.Val = append(out.Val, v)
		}
	}
	return out
}

// assignEntry pairs a target position with an optional source value for the
// single-pass assign merges below.
type assignEntry[D any] struct {
	target int
	val    D
	has    bool // source has an entry at this position
}

// sortAssign sorts assignment entries by target position. Target positions
// are unique (the core layer rejects duplicate assign indices).
func sortAssign[D any](es []assignEntry[D]) {
	// Insertion sort for short lists, quicksort otherwise via index perm.
	if len(es) <= 48 {
		for i := 1; i < len(es); i++ {
			x := es[i]
			j := i - 1
			for j >= 0 && es[j].target > x.target {
				es[j+1] = es[j]
				j--
			}
			es[j+1] = x
		}
		return
	}
	quickSortAssign(es)
}

func quickSortAssign[D any](es []assignEntry[D]) {
	for len(es) > 48 {
		m := len(es) / 2
		if es[0].target > es[m].target {
			es[0], es[m] = es[m], es[0]
		}
		if es[0].target > es[len(es)-1].target {
			es[0], es[len(es)-1] = es[len(es)-1], es[0]
		}
		if es[m].target > es[len(es)-1].target {
			es[m], es[len(es)-1] = es[len(es)-1], es[m]
		}
		pivot := es[m].target
		i, j := 0, len(es)-1
		for i <= j {
			for es[i].target < pivot {
				i++
			}
			for es[j].target > pivot {
				j--
			}
			if i <= j {
				es[i], es[j] = es[j], es[i]
				i++
				j--
			}
		}
		if j < len(es)-i {
			quickSortAssign(es[:j+1])
			es = es[i:]
		} else {
			quickSortAssign(es[i:])
			es = es[:j+1]
		}
	}
	for i := 1; i < len(es); i++ {
		x := es[i]
		j := i - 1
		for j >= 0 && es[j].target > x.target {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = x
	}
}

// mergeAssign merges the old content (idx/val slices) with sorted assignment
// entries, producing new sorted slices. Within the assigned positions the
// entry is replaced (or deleted when the source has none and accum is nil,
// or kept when accum is non-nil); outside them the old entry is kept.
func mergeAssign[D any](cIdx []int, cVal []D, es []assignEntry[D], accum func(D, D) D) ([]int, []D) {
	outIdx := make([]int, 0, len(cIdx)+len(es))
	outVal := make([]D, 0, len(cIdx)+len(es))
	pc, pe := 0, 0
	for pc < len(cIdx) || pe < len(es) {
		switch {
		case pe >= len(es) || (pc < len(cIdx) && cIdx[pc] < es[pe].target):
			outIdx = append(outIdx, cIdx[pc])
			outVal = append(outVal, cVal[pc])
			pc++
		case pc >= len(cIdx) || es[pe].target < cIdx[pc]:
			if es[pe].has {
				outIdx = append(outIdx, es[pe].target)
				outVal = append(outVal, es[pe].val)
			}
			pe++
		default: // both present at the same position
			switch {
			case es[pe].has && accum != nil:
				outIdx = append(outIdx, cIdx[pc])
				outVal = append(outVal, accum(cVal[pc], es[pe].val))
			case es[pe].has:
				outIdx = append(outIdx, es[pe].target)
				outVal = append(outVal, es[pe].val)
			case accum != nil: // source empty, accum keeps old value
				outIdx = append(outIdx, cIdx[pc])
				outVal = append(outVal, cVal[pc])
			}
			// source empty and no accum: position is deleted
			pc++
			pe++
		}
	}
	return outIdx, outVal
}

// AssignExpandVec computes the Z content for w(indices) = u following the
// assign semantics of the spec: Z starts as a copy of c; within the assigned
// positions, entries are replaced by u's entries (deleting positions where u
// has no entry) or, when accum is non-nil, combined with accum while keeping
// c entries untouched where u has no entry. Target indices must be unique
// (validated by the caller).
func AssignExpandVec[D any](c, u *Vec[D], indices []int, accum func(D, D) D) *Vec[D] {
	es := make([]assignEntry[D], len(indices))
	pu := 0
	for k, i := range indices {
		es[k].target = i
		for pu < len(u.Idx) && u.Idx[pu] < k {
			pu++
		}
		if pu < len(u.Idx) && u.Idx[pu] == k {
			es[k].val = u.Val[pu]
			es[k].has = true
		}
	}
	sortAssign(es)
	idx, val := mergeAssign(c.Idx, c.Val, es, accum)
	return &Vec[D]{N: c.N, Idx: idx, Val: val}
}

// AssignScalarExpandVec computes the Z content for w(indices) = scalar:
// every assigned position receives the scalar (combined with accum when
// present and the position already holds a value). Target indices must be
// unique (validated by the caller).
func AssignScalarExpandVec[D any](c *Vec[D], x D, indices []int, accum func(D, D) D) *Vec[D] {
	es := make([]assignEntry[D], len(indices))
	for k, i := range indices {
		es[k] = assignEntry[D]{target: i, val: x, has: true}
	}
	sortAssign(es)
	idx, val := mergeAssign(c.Idx, c.Val, es, accum)
	return &Vec[D]{N: c.N, Idx: idx, Val: val}
}

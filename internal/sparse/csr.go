package sparse

import (
	"sort"
	"unsafe"

	"graphblas/internal/parallel"
)

// CSR is a compressed-sparse-row matrix. Invariants: len(Ptr) == NRows+1,
// Ptr[0] == 0, Ptr is nondecreasing, ColIdx within each row is strictly
// increasing, len(ColIdx) == len(Val) == Ptr[NRows]. Absent elements are
// undefined, not implicit zeros.
type CSR[T any] struct {
	NRows, NCols int
	Ptr          []int
	ColIdx       []int
	Val          []T
}

// NewCSR returns an empty nrows-by-ncols matrix.
func NewCSR[T any](nrows, ncols int) *CSR[T] {
	return &CSR[T]{NRows: nrows, NCols: ncols, Ptr: make([]int, nrows+1)}
}

// NNZ reports the number of stored elements.
func (m *CSR[T]) NNZ() int { return m.Ptr[m.NRows] }

// ApproxBytes estimates the heap footprint of the matrix storage — the
// backing of Ptr, ColIdx, and Val — for the observability layer's
// bytes-touched accounting.
func (m *CSR[T]) ApproxBytes() int64 {
	var elem T
	return int64(len(m.Ptr)+len(m.ColIdx))*int64(unsafe.Sizeof(int(0))) +
		int64(len(m.Val))*int64(unsafe.Sizeof(elem))
}

// Row returns the column indices and values of row i as sub-slices of the
// matrix storage. Callers must not modify the returned slices' structure.
func (m *CSR[T]) Row(i int) ([]int, []T) {
	lo, hi := m.Ptr[i], m.Ptr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// RowVec returns row i as a sparse vector view (shared storage).
func (m *CSR[T]) RowVec(i int) Vec[T] {
	idx, val := m.Row(i)
	return Vec[T]{N: m.NCols, Idx: idx, Val: val}
}

// Clone returns a deep copy of m.
func (m *CSR[T]) Clone() *CSR[T] {
	c := &CSR[T]{NRows: m.NRows, NCols: m.NCols}
	c.Ptr = append([]int(nil), m.Ptr...)
	c.ColIdx = append([]int(nil), m.ColIdx...)
	c.Val = append([]T(nil), m.Val...)
	return c
}

// Clear removes all stored elements, keeping dimensions.
func (m *CSR[T]) Clear() {
	for i := range m.Ptr {
		m.Ptr[i] = 0
	}
	m.ColIdx = m.ColIdx[:0]
	m.Val = m.Val[:0]
}

// find locates (i, j) and returns the storage position and presence.
func (m *CSR[T]) find(i, j int) (int, bool) {
	lo, hi := m.Ptr[i], m.Ptr[i+1]
	p := lo + sort.SearchInts(m.ColIdx[lo:hi], j)
	return p, p < hi && m.ColIdx[p] == j
}

// Get returns element (i, j) and whether it is stored.
func (m *CSR[T]) Get(i, j int) (T, bool) {
	if p, ok := m.find(i, j); ok {
		return m.Val[p], true
	}
	var zero T
	return zero, false
}

// Has reports whether element (i, j) is stored.
func (m *CSR[T]) Has(i, j int) bool {
	_, ok := m.find(i, j)
	return ok
}

// Set stores value x at (i, j). Insertion shifts trailing storage and is
// O(nnz); Build is the bulk path.
func (m *CSR[T]) Set(i, j int, x T) {
	p, ok := m.find(i, j)
	if ok {
		m.Val[p] = x
		return
	}
	m.ColIdx = append(m.ColIdx, 0)
	m.Val = append(m.Val, x)
	copy(m.ColIdx[p+1:], m.ColIdx[p:])
	copy(m.Val[p+1:], m.Val[p:])
	m.ColIdx[p] = j
	m.Val[p] = x
	for r := i + 1; r <= m.NRows; r++ {
		m.Ptr[r]++
	}
}

// Remove deletes element (i, j) if present, reporting whether it existed.
func (m *CSR[T]) Remove(i, j int) bool {
	p, ok := m.find(i, j)
	if !ok {
		return false
	}
	m.ColIdx = append(m.ColIdx[:p], m.ColIdx[p+1:]...)
	m.Val = append(m.Val[:p], m.Val[p+1:]...)
	for r := i + 1; r <= m.NRows; r++ {
		m.Ptr[r]--
	}
	return true
}

// BuildCSR constructs an nrows-by-ncols CSR matrix from coordinate triples.
// Duplicates are combined with dup; nil dup makes duplicates an error
// (ok == false), as are out-of-range indices. Inputs are not modified.
func BuildCSR[T any](nrows, ncols int, is, js []int, vals []T, dup func(T, T) T) (m *CSR[T], ok bool) {
	if len(is) != len(js) || len(is) != len(vals) {
		return nil, false
	}
	for k := range is {
		if is[k] < 0 || is[k] >= nrows || js[k] < 0 || js[k] >= ncols {
			return nil, false
		}
	}
	perm := make([]int, len(is))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		pa, pb := perm[a], perm[b]
		if is[pa] != is[pb] {
			return is[pa] < is[pb]
		}
		return js[pa] < js[pb]
	})
	m = NewCSR[T](nrows, ncols)
	m.ColIdx = make([]int, 0, len(is))
	m.Val = make([]T, 0, len(is))
	counts := make([]int, nrows)
	prevI, prevJ := -1, -1
	for _, p := range perm {
		i, j := is[p], js[p]
		if i == prevI && j == prevJ {
			if dup == nil {
				return nil, false
			}
			m.Val[len(m.Val)-1] = dup(m.Val[len(m.Val)-1], vals[p])
			continue
		}
		m.ColIdx = append(m.ColIdx, j)
		m.Val = append(m.Val, vals[p])
		counts[i]++
		prevI, prevJ = i, j
	}
	for i := 0; i < nrows; i++ {
		m.Ptr[i+1] = m.Ptr[i] + counts[i]
	}
	return m, true
}

// Tuples returns copies of the stored triples in row-major order.
func (m *CSR[T]) Tuples() (is, js []int, vals []T) {
	nnz := m.NNZ()
	is = make([]int, nnz)
	js = append([]int(nil), m.ColIdx[:nnz]...)
	vals = append([]T(nil), m.Val[:nnz]...)
	for i := 0; i < m.NRows; i++ {
		for p := m.Ptr[i]; p < m.Ptr[i+1]; p++ {
			is[p] = i
		}
	}
	return is, js, vals
}

// Transpose returns a new CSR holding mᵀ using a counting sort over columns.
func (m *CSR[T]) Transpose() *CSR[T] {
	t := NewCSR[T](m.NCols, m.NRows)
	nnz := m.NNZ()
	t.ColIdx = make([]int, nnz)
	t.Val = make([]T, nnz)
	// Count entries per column.
	for _, j := range m.ColIdx[:nnz] {
		t.Ptr[j+1]++
	}
	for j := 0; j < t.NRows; j++ {
		t.Ptr[j+1] += t.Ptr[j]
	}
	next := append([]int(nil), t.Ptr...)
	for i := 0; i < m.NRows; i++ {
		for p := m.Ptr[i]; p < m.Ptr[i+1]; p++ {
			j := m.ColIdx[p]
			q := next[j]
			next[j]++
			t.ColIdx[q] = i
			t.Val[q] = m.Val[p]
		}
	}
	return t
}

// Resize changes the dimensions to nrows-by-ncols, dropping elements that
// fall outside the new bounds.
func (m *CSR[T]) Resize(nrows, ncols int) {
	// Drop columns >= ncols row by row, compacting in place.
	if ncols < m.NCols {
		w := 0
		newPtr := make([]int, m.NRows+1)
		for i := 0; i < m.NRows; i++ {
			for p := m.Ptr[i]; p < m.Ptr[i+1]; p++ {
				if m.ColIdx[p] < ncols {
					m.ColIdx[w] = m.ColIdx[p]
					m.Val[w] = m.Val[p]
					w++
				}
			}
			newPtr[i+1] = w
		}
		m.Ptr = newPtr
		m.ColIdx = m.ColIdx[:w]
		m.Val = m.Val[:w]
	}
	m.NCols = ncols
	if nrows < m.NRows {
		w := m.Ptr[nrows]
		m.Ptr = m.Ptr[:nrows+1]
		m.ColIdx = m.ColIdx[:w]
		m.Val = m.Val[:w]
	} else if nrows > m.NRows {
		last := m.Ptr[m.NRows]
		for r := m.NRows; r < nrows; r++ {
			m.Ptr = append(m.Ptr, last)
		}
	}
	m.NRows = nrows
}

// assemble builds a CSR from per-row index/value slices produced by a
// row-parallel kernel. Row slices must already be sorted and deduplicated.
func assemble[T any](nrows, ncols int, rowIdx [][]int, rowVal [][]T) *CSR[T] {
	c := NewCSR[T](nrows, ncols)
	for i := 0; i < nrows; i++ {
		c.Ptr[i+1] = c.Ptr[i] + len(rowIdx[i])
	}
	nnz := c.Ptr[nrows]
	c.ColIdx = make([]int, nnz)
	c.Val = make([]T, nnz)
	parallel.For(nrows, 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(c.ColIdx[c.Ptr[i]:], rowIdx[i])
			copy(c.Val[c.Ptr[i]:], rowVal[i])
		}
	})
	return c
}

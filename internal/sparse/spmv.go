package sparse

import (
	"graphblas/internal/obs"
	"graphblas/internal/parallel"
)

// DotMxV computes w(i) = ⊕_k mul(a(i,k), u(k)) — the pull-style (dot
// product) matrix-vector multiply w = A ⊕.⊗ u. The input vector is
// scattered into a dense workspace once; rows are processed in parallel,
// nnz-balanced.
//
// A non-nil mask is applied inside the kernel: rows the mask disallows are
// skipped entirely, which is the "pull with mask" optimization — the key
// benefit of the API carrying the mask into the operation rather than
// filtering afterwards.
func DotMxV[DA, DU, DC any](a *CSR[DA], u *Vec[DU], mul func(DA, DU) DC, add func(DC, DC) DC, mask *VecMask) *Vec[DC] {
	done := obs.KernelStart("mxv.dot")
	dense, present := u.Dense()
	rowOut := make([]DC, a.NRows)
	rowHas := make([]bool, a.NRows)
	parallel.ForWeighted(a.NRows, a.Ptr, func(lo, hi int) {
		cur := allowsCursor{mask: mask}
		for i := lo; i < hi; i++ {
			if !cur.allows(i) {
				continue
			}
			var acc DC
			has := false
			for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
				k := a.ColIdx[p]
				if !present[k] {
					continue
				}
				x := mul(a.Val[p], dense[k])
				if has {
					acc = add(acc, x)
				} else {
					acc = x
					has = true
				}
			}
			if has {
				rowOut[i] = acc
				rowHas[i] = true
			}
		}
	})
	w := FromDense(rowOut, rowHas)
	done(w.NVals())
	return w
}

// PushMxV computes w(i) = ⊕_k mul(a(k,i), u(k)) — i.e. w = Aᵀ ⊕.⊗ u — by
// scattering each stored entry of u through its row of a (push style). This
// is the natural kernel for frontier expansion when the frontier is sparse:
// work is proportional to the edges incident to the frontier, not to the
// whole matrix.
//
// A non-nil mask filters target positions before accumulation.
func PushMxV[DA, DU, DC any](a *CSR[DA], u *Vec[DU], mul func(DA, DU) DC, add func(DC, DC) DC, mask *VecMask) *Vec[DC] {
	done := obs.KernelStart("mxv.push")
	spa := NewSPA[DC](a.NCols)
	spa.Reset()
	var allowed *BitSPA
	comp := false
	if mask != nil {
		allowed = NewBitSPA(a.NCols)
		allowed.Reset()
		comp = mask.Comp
		if comp {
			allowed.MarkAll(mask.Structure)
		} else {
			allowed.MarkAll(mask.Idx)
		}
	}
	for pu, k := range u.Idx {
		uv := u.Val[pu]
		for p := a.Ptr[k]; p < a.Ptr[k+1]; p++ {
			i := a.ColIdx[p]
			if allowed != nil && allowed.Has(i) == comp {
				continue
			}
			spa.Accumulate(i, mul(a.Val[p], uv), add)
		}
	}
	idx, val := spa.Gather(nil, nil)
	done(len(idx))
	return &Vec[DC]{N: a.NCols, Idx: idx, Val: val}
}

package sparse

import (
	"math"

	"graphblas/internal/obs"
	"graphblas/internal/parallel"
	"graphblas/internal/pool"
)

// DotMxV computes w(i) = ⊕_k mul(a(i,k), u(k)) — the pull-style (dot
// product) matrix-vector multiply w = A ⊕.⊗ u. The input vector is
// scattered into a dense workspace once; rows are processed in parallel,
// nnz-balanced.
//
// A non-nil mask is applied inside the kernel: rows the mask disallows are
// skipped entirely, which is the "pull with mask" optimization — the key
// benefit of the API carrying the mask into the operation rather than
// filtering afterwards.
//
//grblint:hotpath
func DotMxV[DA, DU, DC any](a *CSR[DA], u *Vec[DU], mul func(DA, DU) DC, add func(DC, DC) DC, mask *VecMask) *Vec[DC] {
	done := obs.KernelStart("mxv.dot")
	dense, present := u.Dense()
	w := dotCore(a, dense, present, mul, add, mask)
	done(w.NVals())
	return w
}

// dotCore is the row-parallel pull loop shared by DotMxV and FusedDotMxV:
// the input vector is already scattered into dense/present. The presence
// flags come from the pool; the value workspace is domain-generic and
// cannot (its element type varies per instantiation).
//
//grblint:hotpath
func dotCore[DA, DU, DC any](a *CSR[DA], dense []DU, present []bool, mul func(DA, DU) DC, add func(DC, DC) DC, mask *VecMask) *Vec[DC] {
	rowOut := make([]DC, a.NRows)
	rowHas := pool.GetBools(a.NRows)
	parallel.ForWeighted(a.NRows, a.Ptr, func(lo, hi int) {
		cur := allowsCursor{mask: mask}
		for i := lo; i < hi; i++ {
			if !cur.allows(i) {
				continue
			}
			var acc DC
			has := false
			for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
				k := a.ColIdx[p]
				if !present[k] {
					continue
				}
				x := mul(a.Val[p], dense[k])
				if has {
					acc = add(acc, x)
				} else {
					acc = x
					has = true
				}
			}
			if has {
				rowOut[i] = acc
				rowHas[i] = true
			}
		}
	})
	w := FromDense(rowOut, rowHas)
	pool.PutBools(rowHas)
	return w
}

// PushMxV computes w(i) = ⊕_k mul(a(k,i), u(k)) — i.e. w = Aᵀ ⊕.⊗ u — by
// scattering each stored entry of u through its row of a (push style). This
// is the natural kernel for frontier expansion when the frontier is sparse:
// work is proportional to the edges incident to the frontier, not to the
// whole matrix.
//
// A non-nil mask filters target positions before accumulation.
//
//grblint:hotpath
func PushMxV[DA, DU, DC any](a *CSR[DA], u *Vec[DU], mul func(DA, DU) DC, add func(DC, DC) DC, mask *VecMask) *Vec[DC] {
	done := obs.KernelStart("mxv.push")
	w := pushCore(a, u.Idx, func(p int) DU { return u.Val[p] }, mul, add, mask)
	done(w.NVals())
	return w
}

// pushParallelMinWork is the total-edge threshold below which the push
// kernel stays serial: the count/scatter/fold scheme touches every
// contribution twice, so tiny frontiers are cheaper in the single SPA pass.
const pushParallelMinWork = 2048

// pushCore is the push-style scatter shared by PushMxV and FusedPushMxV.
// The frontier is (uIdx, uval): stored row indices in increasing order and
// an accessor for the value at frontier position p (called exactly once per
// frontier entry, in increasing position order, so fused producers observe
// the same evaluation schedule as a materialized input).
//
// The parallel path is bit-exact with the serial SPA pass for any worker
// count: contributions to each target are laid out in global traversal
// order (chunks are contiguous frontier ranges, slots within a target are
// chunk-major) and folded left-to-right in that order — the same fold the
// serial SPA performs — rather than merging per-worker partial reductions,
// which would reassociate floating-point ⊕.
//
//grblint:hotpath
func pushCore[DA, DU, DC any](a *CSR[DA], uIdx []int, uval func(int) DU, mul func(DA, DU) DC, add func(DC, DC) DC, mask *VecMask) *Vec[DC] {
	var allowed *BitSPA
	comp := false
	if mask != nil {
		allowed = NewBitSPA(a.NCols)
		allowed.Reset()
		comp = mask.Comp
		if comp {
			allowed.MarkAll(mask.Structure)
		} else {
			allowed.MarkAll(mask.Idx)
		}
	}
	if workers := parallel.MaxWorkers(); workers > 1 && len(uIdx) > 1 {
		cum := pool.GetInts(len(uIdx) + 1)
		for k, r := range uIdx {
			cum[k+1] = cum[k] + (a.Ptr[r+1] - a.Ptr[r])
		}
		// The upper bound keeps every per-chunk per-column count in phase A
		// within int32 (each is ≤ the total contribution count), so the
		// counts can never wrap before pushParallel's slot-overflow check.
		if total := cum[len(uIdx)]; total >= pushParallelMinWork && total <= math.MaxInt32 {
			bounds := parallel.PartitionByWeight(len(uIdx), workers, cum)
			if len(bounds) > 2 {
				if w, ok := pushParallel(a, uIdx, uval, mul, add, allowed, comp, bounds); ok {
					pool.PutInts(cum)
					return w
				}
			}
		}
		pool.PutInts(cum)
	}
	return pushSerial(a, uIdx, uval, mul, add, allowed, comp)
}

// pushSerial is the single SPA pass: a left fold over contributions in
// frontier-traversal order, gathered in sorted target order.
//
//grblint:hotpath
func pushSerial[DA, DU, DC any](a *CSR[DA], uIdx []int, uval func(int) DU, mul func(DA, DU) DC, add func(DC, DC) DC, allowed *BitSPA, comp bool) *Vec[DC] {
	spa := NewSPA[DC](a.NCols)
	spa.Reset()
	for pu, k := range uIdx {
		uv := uval(pu)
		for p := a.Ptr[k]; p < a.Ptr[k+1]; p++ {
			i := a.ColIdx[p]
			if allowed != nil && allowed.Has(i) == comp {
				continue
			}
			spa.Accumulate(i, mul(a.Val[p], uv), add)
		}
	}
	idx, val := spa.Gather(make([]int, 0, spa.Len()), make([]DC, 0, spa.Len()))
	return &Vec[DC]{N: a.NCols, Idx: idx, Val: val}
}

// pushParallel runs the four-phase exact-order scheme over the contiguous
// frontier chunks in bounds: (A) per-chunk dense contribution counts,
// (B) serial prefix sums into per-target slot ranges and per-(chunk,target)
// start offsets, (C) parallel scatter of mul products into globally ordered
// slots, (D) parallel per-target left fold in slot order. Returns ok=false
// when slot offsets would overflow the int32 count arrays (callers fall
// back to the serial pass); pushCore's total-work bound makes this
// unreachable today, but the check keeps pushParallel safe standalone.
// Index scratch (per-chunk counts, the column prefix sums, the presence
// flags) is pooled; every exit returns it.
//
//grblint:hotpath
func pushParallel[DA, DU, DC any](a *CSR[DA], uIdx []int, uval func(int) DU, mul func(DA, DU) DC, add func(DC, DC) DC, allowed *BitSPA, comp bool, bounds []int) (*Vec[DC], bool) {
	nchunks := len(bounds) - 1
	ncols := a.NCols
	// Phase A: each chunk counts its contributions per target column.
	counts := make([][]int32, nchunks)
	parallel.ForRanges(bounds, func(c, lo, hi int) {
		cnt := pool.GetInt32s(ncols)
		for k := lo; k < hi; k++ {
			r := uIdx[k]
			for p := a.Ptr[r]; p < a.Ptr[r+1]; p++ {
				i := a.ColIdx[p]
				if allowed != nil && allowed.Has(i) == comp {
					continue
				}
				cnt[i]++
			}
		}
		counts[c] = cnt
	})
	// Phase B: per-target slot ranges; chunk-major order within a target is
	// exactly global traversal order because chunks are contiguous.
	colPtr := pool.GetInts(ncols + 1)
	for i := 0; i < ncols; i++ {
		total := 0
		for c := 0; c < nchunks; c++ {
			total += int(counts[c][i])
		}
		colPtr[i+1] = colPtr[i] + total
	}
	slots := colPtr[ncols]
	if slots > math.MaxInt32 {
		for _, cnt := range counts {
			pool.PutInt32s(cnt)
		}
		pool.PutInts(colPtr)
		return nil, false
	}
	// Rewrite each chunk's counts in place into its start offsets.
	for i := 0; i < ncols; i++ {
		off := colPtr[i]
		for c := 0; c < nchunks; c++ {
			n := int(counts[c][i])
			counts[c][i] = int32(off)
			off += n
		}
	}
	// Phase C: scatter products into the globally ordered slots. Chunks
	// advance only their own offset cursors and write disjoint slot ranges.
	vals := make([]DC, slots)
	parallel.ForRanges(bounds, func(c, lo, hi int) {
		off := counts[c]
		for k := lo; k < hi; k++ {
			r := uIdx[k]
			uv := uval(k)
			for p := a.Ptr[r]; p < a.Ptr[r+1]; p++ {
				i := a.ColIdx[p]
				if allowed != nil && allowed.Has(i) == comp {
					continue
				}
				vals[off[i]] = mul(a.Val[p], uv)
				off[i]++
			}
		}
	})
	// Phase D: left fold per target in slot order — the serial SPA's fold.
	rowOut := make([]DC, ncols)
	rowHas := pool.GetBools(ncols)
	parallel.ForWeighted(ncols, colPtr, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s, e := colPtr[i], colPtr[i+1]
			if s == e {
				continue
			}
			acc := vals[s]
			for p := s + 1; p < e; p++ {
				acc = add(acc, vals[p])
			}
			rowOut[i] = acc
			rowHas[i] = true
		}
	})
	w := FromDense(rowOut, rowHas)
	for _, cnt := range counts {
		pool.PutInt32s(cnt)
	}
	pool.PutInts(colPtr)
	pool.PutBools(rowHas)
	return w, true
}

package sparse

import (
	"graphblas/internal/obs"
	"graphblas/internal/parallel"
)

// SpGEMM computes the semiring matrix product C = A ⊕.⊗ B using Gustavson's
// row-by-row algorithm with a sparse accumulator, parallel over nnz-balanced
// row ranges of A.
//
// When mask is non-nil the mask is applied *inside* the kernel: positions the
// mask disallows are never accumulated, which is the pruning the paper's
// betweenness-centrality example relies on (Section VII-C: the structural
// complement of numsp prunes already-discovered vertices during frontier
// expansion).
//
//grblint:hotpath
func SpGEMM[DA, DB, DC any](a *CSR[DA], b *CSR[DB], mul func(DA, DB) DC, add func(DC, DC) DC, mask *MatMask) *CSR[DC] {
	done := obs.KernelStart("spgemm")
	ri := make([][]int, a.NRows)
	rv := make([][]DC, a.NRows)
	parallel.ForWeighted(a.NRows, a.Ptr, func(lo, hi int) {
		spa := NewSPA[DC](b.NCols)
		// The row-mask predicate closures are built once per chunk (they
		// read the generation-stamped allowed set, which each row re-marks),
		// not once per row — a per-row closure is a heap allocation per row
		// and pins its captures (the hotalloc analyzer's loop-closure class).
		var allowed *BitSPA
		maskRow := func(int) bool { return true }
		if mask != nil {
			allowed = NewBitSPA(b.NCols)
			if mask.Comp {
				maskRow = func(j int) bool { return !allowed.Has(j) }
			} else {
				maskRow = func(j int) bool { return allowed.Has(j) }
			}
		}
		// Chunk-local arena: every row of this chunk gathers into one pair
		// of growing slices, so allocation count is O(log total) per chunk
		// rather than O(rows). The published row slices alias the arena,
		// which assemble copies out of.
		var idxArena []int
		var valArena []DC
		offs := make([]int, 0, hi-lo+1)
		offs = append(offs, 0)
		for i := lo; i < hi; i++ {
			spa.Reset()
			if mask != nil {
				allowed.Reset()
				if mask.Comp {
					allowed.MarkAll(mask.StrRow(i))
				} else {
					allowed.MarkAll(mask.EffRow(i))
				}
			}
			for pa := a.Ptr[i]; pa < a.Ptr[i+1]; pa++ {
				k := a.ColIdx[pa]
				av := a.Val[pa]
				for pb := b.Ptr[k]; pb < b.Ptr[k+1]; pb++ {
					j := b.ColIdx[pb]
					if !maskRow(j) {
						continue
					}
					spa.Accumulate(j, mul(av, b.Val[pb]), add)
				}
			}
			idxArena, valArena = spa.Gather(idxArena, valArena)
			offs = append(offs, len(idxArena))
		}
		for i := lo; i < hi; i++ {
			k := i - lo
			ri[i] = idxArena[offs[k]:offs[k+1]]
			rv[i] = valArena[offs[k]:offs[k+1]]
		}
	})
	c := assemble(a.NRows, b.NCols, ri, rv)
	done(c.NNZ())
	return c
}

// SpGEMMHeap is the heap-merge SpGEMM variant used for the DESIGN.md
// ablation: instead of a dense accumulator it performs a k-way merge of the
// B rows selected by each A row. Asymptotically better for hypersparse
// outputs, usually slower in practice — which is the point of the ablation.
func SpGEMMHeap[DA, DB, DC any](a *CSR[DA], b *CSR[DB], mul func(DA, DB) DC, add func(DC, DC) DC) *CSR[DC] {
	ri := make([][]int, a.NRows)
	rv := make([][]DC, a.NRows)
	parallel.ForWeighted(a.NRows, a.Ptr, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ri[i], rv[i] = spgemmHeapRow(a, b, i, mul, add)
		}
	})
	return assemble(a.NRows, b.NCols, ri, rv)
}

// heapEntry is a cursor into one selected row of B during the k-way merge.
type heapEntry[DA any] struct {
	col  int // current column of this cursor
	pos  int // storage position in b
	end  int // end of this row's storage
	aval DA  // the A value scaling this row
}

func spgemmHeapRow[DA, DB, DC any](a *CSR[DA], b *CSR[DB], i int, mul func(DA, DB) DC, add func(DC, DC) DC) ([]int, []DC) {
	var h []heapEntry[DA]
	for pa := a.Ptr[i]; pa < a.Ptr[i+1]; pa++ {
		k := a.ColIdx[pa]
		if b.Ptr[k] < b.Ptr[k+1] {
			h = append(h, heapEntry[DA]{col: b.ColIdx[b.Ptr[k]], pos: b.Ptr[k], end: b.Ptr[k+1], aval: a.Val[pa]})
		}
	}
	heapify(h)
	var idx []int
	var val []DC
	for len(h) > 0 {
		top := h[0]
		x := mul(top.aval, b.Val[top.pos])
		if n := len(idx); n > 0 && idx[n-1] == top.col {
			val[n-1] = add(val[n-1], x)
		} else {
			idx = append(idx, top.col)
			val = append(val, x)
		}
		top.pos++
		if top.pos < top.end {
			top.col = b.ColIdx[top.pos]
			h[0] = top
			siftDown(h, 0)
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			if len(h) > 0 {
				siftDown(h, 0)
			}
		}
	}
	return idx, val
}

func heapify[DA any](h []heapEntry[DA]) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

func siftDown[DA any](h []heapEntry[DA], i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h[l].col < h[smallest].col {
			smallest = l
		}
		if r < len(h) && h[r].col < h[smallest].col {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

package sparse

// SPA is a sparse accumulator: a dense value array with stamp-based presence
// marks, so it can be reused across rows without O(n) clearing. It is the
// workhorse of the Gustavson SpGEMM and push-style SpMV kernels.
type SPA[T any] struct {
	val   []T
	stamp []int
	cur   int
	nz    []int // indices touched in the current generation, unsorted
}

// NewSPA returns a sparse accumulator over index space [0, n). The nonzero
// list is pre-sized to n up front — the accumulator is already O(n) in val
// and stamp, and a full-capacity nz list keeps Accumulate free of append
// growth on the pinned-allocation kernel paths.
func NewSPA[T any](n int) *SPA[T] {
	return &SPA[T]{val: make([]T, n), stamp: make([]int, n), cur: 0, nz: make([]int, 0, n)}
}

// Reset begins a new accumulation generation; prior contents vanish in O(1)
// (amortized; a full clear happens only on stamp wraparound, which cannot
// occur in practice with int stamps).
func (s *SPA[T]) Reset() {
	s.cur++
	s.nz = s.nz[:0]
}

// Accumulate combines x into position i with add, or stores x if i is empty.
func (s *SPA[T]) Accumulate(i int, x T, add func(T, T) T) {
	if s.stamp[i] == s.cur {
		s.val[i] = add(s.val[i], x)
		return
	}
	s.stamp[i] = s.cur
	s.val[i] = x
	s.nz = append(s.nz, i)
}

// Store overwrites position i with x regardless of prior presence.
func (s *SPA[T]) Store(i int, x T) {
	if s.stamp[i] != s.cur {
		s.stamp[i] = s.cur
		s.nz = append(s.nz, i)
	}
	s.val[i] = x
}

// Has reports whether position i holds a value in the current generation.
func (s *SPA[T]) Has(i int) bool { return s.stamp[i] == s.cur }

// Get returns the value at position i (meaningful only if Has(i)).
func (s *SPA[T]) Get(i int) T { return s.val[i] }

// Len reports how many positions hold values in the current generation.
func (s *SPA[T]) Len() int { return len(s.nz) }

// Gather appends the current generation's (index, value) pairs in sorted
// index order to idx and val and returns the extended slices.
func (s *SPA[T]) Gather(idx []int, val []T) ([]int, []T) {
	insertionSortInts(s.nz)
	for _, i := range s.nz {
		idx = append(idx, i)
		val = append(val, s.val[i])
	}
	return idx, val
}

// insertionSortInts sorts small-to-medium int slices; SPA nonzero lists are
// typically short per row, and for long lists we fall back to a quicksort.
func insertionSortInts(a []int) {
	if len(a) > 48 {
		quickSortInts(a)
		return
	}
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

func quickSortInts(a []int) {
	for len(a) > 48 {
		// median-of-three pivot
		m := len(a) / 2
		if a[0] > a[m] {
			a[0], a[m] = a[m], a[0]
		}
		if a[0] > a[len(a)-1] {
			a[0], a[len(a)-1] = a[len(a)-1], a[0]
		}
		if a[m] > a[len(a)-1] {
			a[m], a[len(a)-1] = a[len(a)-1], a[m]
		}
		pivot := a[m]
		i, j := 0, len(a)-1
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if j < len(a)-i {
			quickSortInts(a[:j+1])
			a = a[i:]
		} else {
			quickSortInts(a[i:])
			a = a[:j+1]
		}
	}
	insertionSortSmall(a)
}

func insertionSortSmall(a []int) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// BitSPA is a presence-only sparse accumulator used for boolean-structure
// kernels (e.g. masked pruning) where values are irrelevant.
type BitSPA struct {
	stamp []int
	cur   int
}

// NewBitSPA returns a presence accumulator over [0, n).
func NewBitSPA(n int) *BitSPA { return &BitSPA{stamp: make([]int, n)} }

// Reset begins a new generation.
func (s *BitSPA) Reset() { s.cur++ }

// Mark records presence of index i.
func (s *BitSPA) Mark(i int) { s.stamp[i] = s.cur }

// Has reports presence of index i in the current generation.
func (s *BitSPA) Has(i int) bool { return s.stamp[i] == s.cur }

// MarkAll records presence for every index in idx.
func (s *BitSPA) MarkAll(idx []int) {
	for _, i := range idx {
		s.stamp[i] = s.cur
	}
}

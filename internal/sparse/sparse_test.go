package sparse

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func addF(x, y float64) float64 { return x + y }
func mulF(x, y float64) float64 { return x * y }

// randVec builds a random sparse vector and its dense model.
func randVec(rng *rand.Rand, n int, p float64) (*Vec[float64], map[int]float64) {
	v := NewVec[float64](n)
	m := map[int]float64{}
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			x := float64(rng.Intn(19) - 9)
			v.Idx = append(v.Idx, i)
			v.Val = append(v.Val, x)
			m[i] = x
		}
	}
	return v, m
}

// randCSR builds a random CSR matrix and its dense model.
func randCSR(rng *rand.Rand, nr, nc int, p float64) (*CSR[float64], map[[2]int]float64) {
	var is, js []int
	var vs []float64
	m := map[[2]int]float64{}
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			if rng.Float64() < p {
				x := float64(rng.Intn(9) + 1)
				is = append(is, i)
				js = append(js, j)
				vs = append(vs, x)
				m[[2]int{i, j}] = x
			}
		}
	}
	c, ok := BuildCSR(nr, nc, is, js, vs, nil)
	if !ok {
		panic("BuildCSR failed")
	}
	return c, m
}

func checkVecInvariants(t *testing.T, v *Vec[float64], label string) {
	t.Helper()
	if len(v.Idx) != len(v.Val) {
		t.Fatalf("%s: idx/val length mismatch", label)
	}
	for k := 1; k < len(v.Idx); k++ {
		if v.Idx[k-1] >= v.Idx[k] {
			t.Fatalf("%s: indices not strictly increasing at %d: %v", label, k, v.Idx)
		}
	}
	for _, i := range v.Idx {
		if i < 0 || i >= v.N {
			t.Fatalf("%s: index %d out of range %d", label, i, v.N)
		}
	}
}

func checkCSRInvariants(t *testing.T, m *CSR[float64], label string) {
	t.Helper()
	if len(m.Ptr) != m.NRows+1 || m.Ptr[0] != 0 {
		t.Fatalf("%s: bad Ptr", label)
	}
	for i := 0; i < m.NRows; i++ {
		if m.Ptr[i] > m.Ptr[i+1] {
			t.Fatalf("%s: Ptr decreasing at %d", label, i)
		}
		for p := m.Ptr[i] + 1; p < m.Ptr[i+1]; p++ {
			if m.ColIdx[p-1] >= m.ColIdx[p] {
				t.Fatalf("%s: row %d columns not strictly increasing", label, i)
			}
		}
		for p := m.Ptr[i]; p < m.Ptr[i+1]; p++ {
			if m.ColIdx[p] < 0 || m.ColIdx[p] >= m.NCols {
				t.Fatalf("%s: row %d col %d out of range", label, i, m.ColIdx[p])
			}
		}
	}
	if m.Ptr[m.NRows] != len(m.ColIdx) || len(m.ColIdx) != len(m.Val) {
		t.Fatalf("%s: storage lengths inconsistent", label)
	}
}

func TestVecSetGetRemove(t *testing.T) {
	v := NewVec[float64](10)
	order := []int{5, 1, 9, 3, 1, 7}
	for k, i := range order {
		v.Set(i, float64(k))
	}
	checkVecInvariants(t, v, "after sets")
	if v.NVals() != 5 {
		t.Fatalf("nvals %d", v.NVals())
	}
	if x, ok := v.Get(1); !ok || x != 4 {
		t.Fatalf("overwrite got %v %v", x, ok)
	}
	if !v.Remove(3) || v.Remove(3) {
		t.Fatalf("remove semantics")
	}
	if _, ok := v.Get(3); ok {
		t.Fatalf("removed element still present")
	}
	checkVecInvariants(t, v, "after removes")
}

// Property: BuildVec sorts, dedups with the combiner, and round-trips
// through Tuples.
func TestQuickBuildVecRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 64
		idx := make([]int, len(raw))
		val := make([]float64, len(raw))
		model := map[int]float64{}
		for k, r := range raw {
			idx[k] = int(r) % n
			val[k] = float64(k + 1)
			model[idx[k]] += val[k]
		}
		v, ok := BuildVec(n, idx, val, addF)
		if !ok {
			return false
		}
		gi, gv := v.Tuples()
		if len(gi) != len(model) {
			return false
		}
		for k, i := range gi {
			if model[i] != gv[k] {
				return false
			}
		}
		return sort.IntsAreSorted(gi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution and preserves content.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, model := randCSR(rng, 1+rng.Intn(20), 1+rng.Intn(20), 0.3)
		tt := m.Transpose().Transpose()
		if tt.NRows != m.NRows || tt.NCols != m.NCols || tt.NNZ() != m.NNZ() {
			return false
		}
		is, js, vs := tt.Tuples()
		for k := range is {
			if model[[2]int{is[k], js[k]}] != vs[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: VecUnion is commutative for a commutative operator and its
// structure is the union of structures.
func TestQuickVecUnionCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		a, am := randVec(rng, n, 0.4)
		b, bm := randVec(rng, n, 0.4)
		u1 := VecUnion(a, b, addF)
		u2 := VecUnion(b, a, addF)
		if !reflect.DeepEqual(u1.Idx, u2.Idx) || !reflect.DeepEqual(u1.Val, u2.Val) {
			return false
		}
		want := map[int]float64{}
		for i, x := range am {
			want[i] = x
		}
		for i, x := range bm {
			want[i] += x
		}
		if len(u1.Idx) != len(want) {
			return false
		}
		for k, i := range u1.Idx {
			if want[i] != u1.Val[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: VecIntersect's structure is the intersection of structures.
func TestQuickVecIntersect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		a, am := randVec(rng, n, 0.5)
		b, bm := randVec(rng, n, 0.5)
		x := VecIntersect(a, b, mulF)
		for k, i := range x.Idx {
			av, aok := am[i]
			bv, bok := bm[i]
			if !aok || !bok || x.Val[k] != av*bv {
				return false
			}
		}
		count := 0
		for i := range am {
			if _, ok := bm[i]; ok {
				count++
			}
		}
		return count == len(x.Idx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SpGEMM (SPA) and SpGEMMHeap agree with the naive dense product.
func TestQuickSpGEMMAgainstDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, l, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a, am := randCSR(rng, m, l, 0.35)
		b, bm := randCSR(rng, l, n, 0.35)
		want := map[[2]int]float64{}
		has := map[[2]int]bool{}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < l; k++ {
					x, ok1 := am[[2]int{i, k}]
					y, ok2 := bm[[2]int{k, j}]
					if ok1 && ok2 {
						want[[2]int{i, j}] += x * y
						has[[2]int{i, j}] = true
					}
				}
			}
		}
		for _, c := range []*CSR[float64]{
			SpGEMM(a, b, mulF, addF, nil),
			SpGEMMHeap(a, b, mulF, addF),
		} {
			if c.NNZ() != len(has) {
				return false
			}
			is, js, vs := c.Tuples()
			for k := range is {
				if want[[2]int{is[k], js[k]}] != vs[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: masked SpGEMM equals unmasked SpGEMM filtered by the mask.
func TestQuickSpGEMMMaskedEqualsFiltered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a, _ := randCSR(rng, n, n, 0.3)
		b, _ := randCSR(rng, n, n, 0.3)
		mp, _ := randCSR(rng, n, n, 0.4)
		for _, comp := range []bool{false, true} {
			mask := &MatMask{NCols: n, EffPtr: mp.Ptr, EffIdx: mp.ColIdx, StrPtr: mp.Ptr, StrIdx: mp.ColIdx, Comp: comp}
			got := SpGEMM(a, b, mulF, addF, mask)
			full := SpGEMM(a, b, mulF, addF, nil)
			want := map[[2]int]float64{}
			is, js, vs := full.Tuples()
			for k := range is {
				member := mp.Has(is[k], js[k])
				if member != comp {
					want[[2]int{is[k], js[k]}] = vs[k]
				}
			}
			if got.NNZ() != len(want) {
				return false
			}
			gi, gj, gv := got.Tuples()
			for k := range gi {
				if want[[2]int{gi[k], gj[k]}] != gv[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: DotMxV and PushMxV are consistent: Dot(A, u) == Push(Aᵀ, u).
func TestQuickDotPushConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr, nc := 1+rng.Intn(15), 1+rng.Intn(15)
		a, _ := randCSR(rng, nr, nc, 0.3)
		u, _ := randVec(rng, nc, 0.5)
		dot := DotMxV(a, u, mulF, addF, nil)
		push := PushMxV(a.Transpose(), u, mulF, addF, nil)
		return reflect.DeepEqual(dot.Idx, push.Idx) && reflect.DeepEqual(dot.Val, push.Val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: WriteVec with no mask and no accumulator returns exactly t.
func TestQuickWriteVecIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		c, _ := randVec(rng, n, 0.4)
		tv, _ := randVec(rng, n, 0.4)
		out := WriteVec(c, tv, nil, nil, false)
		return reflect.DeepEqual(out.Idx, tv.Idx) && reflect.DeepEqual(out.Val, tv.Val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaskMergeVec with a full true mask equals z; with an empty mask
// and replace it is empty; with an empty mask and merge it equals c.
func TestMaskMergeVecEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 30
	c, _ := randVec(rng, n, 0.5)
	z, _ := randVec(rng, n, 0.5)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	full := &VecMask{N: n, Idx: all, Structure: all}
	if out := MaskMergeVec(c, z, full, false); !reflect.DeepEqual(out.Idx, z.Idx) {
		t.Fatalf("full mask should pass z through")
	}
	empty := &VecMask{N: n}
	if out := MaskMergeVec(c, z, empty, true); out.NVals() != 0 {
		t.Fatalf("empty mask with replace should clear")
	}
	if out := MaskMergeVec(c, z, empty, false); !reflect.DeepEqual(out.Idx, c.Idx) {
		t.Fatalf("empty mask merge should keep c")
	}
	// Complement of empty mask admits everything.
	compEmpty := &VecMask{N: n, Comp: true}
	if out := MaskMergeVec(c, z, compEmpty, false); !reflect.DeepEqual(out.Idx, z.Idx) {
		t.Fatalf("complement of empty mask should pass z through")
	}
}

func TestCSRSetRemoveResize(t *testing.T) {
	m := NewCSR[float64](4, 4)
	m.Set(2, 1, 5)
	m.Set(0, 3, 2)
	m.Set(2, 0, 1)
	m.Set(2, 1, 9) // overwrite
	checkCSRInvariants(t, m, "after sets")
	if m.NNZ() != 3 {
		t.Fatalf("nnz %d", m.NNZ())
	}
	if x, ok := m.Get(2, 1); !ok || x != 9 {
		t.Fatalf("get %v %v", x, ok)
	}
	if !m.Remove(0, 3) || m.Remove(0, 3) {
		t.Fatalf("remove semantics")
	}
	checkCSRInvariants(t, m, "after remove")
	m.Resize(3, 1)
	checkCSRInvariants(t, m, "after shrink")
	if m.NNZ() != 1 { // only (2,0) survives
		t.Fatalf("resize nnz %d", m.NNZ())
	}
	m.Resize(6, 6)
	checkCSRInvariants(t, m, "after grow")
	if m.NNZ() != 1 || m.NRows != 6 || m.NCols != 6 {
		t.Fatalf("grow wrong")
	}
}

func TestBuildCSRDuplicates(t *testing.T) {
	if _, ok := BuildCSR(2, 2, []int{0, 0}, []int{1, 1}, []float64{1, 2}, nil); ok {
		t.Fatalf("duplicates without dup should fail")
	}
	m, ok := BuildCSR(2, 2, []int{0, 0, 1}, []int{1, 1, 0}, []float64{1, 2, 7}, addF)
	if !ok {
		t.Fatalf("BuildCSR failed")
	}
	if x, _ := m.Get(0, 1); x != 3 {
		t.Fatalf("dup combine %v", x)
	}
	if _, ok := BuildCSR(2, 2, []int{5}, []int{0}, []float64{1}, nil); ok {
		t.Fatalf("out of range accepted")
	}
}

func TestExtractCSRDuplicateIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, model := randCSR(rng, 6, 6, 0.5)
	rows := []int{3, 3, 0, 5}
	cols := []int{2, 2, 4}
	got := ExtractCSR(a, rows, cols)
	checkCSRInvariants(t, got, "extract")
	for r, src := range rows {
		for q, cj := range cols {
			want, wok := model[[2]int{src, cj}]
			g, gok := got.Get(r, q)
			if wok != gok || (wok && g != want) {
				t.Fatalf("(%d,%d): got %v,%v want %v,%v", r, q, g, gok, want, wok)
			}
		}
	}
}

func TestKron(t *testing.T) {
	a, _ := BuildCSR(2, 3, []int{0, 1}, []int{2, 0}, []float64{2, 3}, nil)
	b, _ := BuildCSR(3, 2, []int{0, 2}, []int{1, 0}, []float64{5, 7}, nil)
	k := KronCSR(a, b, mulF)
	checkCSRInvariants(t, k, "kron")
	if k.NRows != 6 || k.NCols != 6 || k.NNZ() != 4 {
		t.Fatalf("kron shape %dx%d nnz %d", k.NRows, k.NCols, k.NNZ())
	}
	checks := [][3]float64{
		{0, 5, 10}, {2, 4, 14}, {3, 1, 15}, {5, 0, 21},
	}
	for _, c := range checks {
		if x, ok := k.Get(int(c[0]), int(c[1])); !ok || x != c[2] {
			t.Fatalf("kron (%v,%v) got %v %v want %v", c[0], c[1], x, ok, c[2])
		}
	}
}

func TestReduceRows(t *testing.T) {
	a, _ := BuildCSR(3, 3, []int{0, 0, 2}, []int{0, 1, 2}, []float64{1, 2, 5}, nil)
	w := ReduceRowsCSR(a, addF, nil)
	if w.NVals() != 2 {
		t.Fatalf("nvals %d", w.NVals())
	}
	if x, _ := w.Get(0); x != 3 {
		t.Fatalf("row0 %v", x)
	}
	if _, ok := w.Get(1); ok {
		t.Fatalf("empty row produced entry")
	}
	total, any := ReduceAllCSR(a, addF, 0, nil)
	if !any || total != 8 {
		t.Fatalf("reduce all %v %v", total, any)
	}
	empty := NewCSR[float64](2, 2)
	if _, any := ReduceAllCSR(empty, addF, 0, nil); any {
		t.Fatalf("empty matrix reported entries")
	}
}

func TestSelectAndApply(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a, model := randCSR(rng, 8, 8, 0.4)
	sel := SelectCSR(a, func(v float64, i, j int) bool { return j < i && v > 3 })
	checkCSRInvariants(t, sel, "select")
	is, js, vs := sel.Tuples()
	for k := range is {
		if !(js[k] < is[k] && vs[k] > 3) {
			t.Fatalf("select kept (%d,%d)=%v", is[k], js[k], vs[k])
		}
	}
	count := 0
	for k, v := range model {
		if k[1] < k[0] && v > 3 {
			count++
		}
	}
	if count != sel.NNZ() {
		t.Fatalf("select count %d want %d", sel.NNZ(), count)
	}

	ap := ApplyIndexCSR(a, func(v float64, i, j int) float64 { return v + float64(100*i+j) })
	ai, aj, av := ap.Tuples()
	for k := range ai {
		if av[k] != model[[2]int{ai[k], aj[k]}]+float64(100*ai[k]+aj[k]) {
			t.Fatalf("apply index wrong at (%d,%d)", ai[k], aj[k])
		}
	}
}

func TestPartitionByWeight(t *testing.T) {
	// Degenerate and balanced cases exercised through ForWeighted in other
	// tests; here check bounds structure directly via a skewed cum array.
	cum := []int{0, 100, 101, 102, 103, 104}
	a, _ := BuildCSR(5, 5, []int{0}, []int{0}, []float64{1}, nil)
	_ = a
	// One heavy row: partitioning should still cover [0, n).
	got := SpGEMM(
		&CSR[float64]{NRows: 5, NCols: 5, Ptr: cum[:6], ColIdx: make([]int, 104), Val: make([]float64, 104)},
		NewCSR[float64](5, 5), mulF, addF, nil)
	if got.NNZ() != 0 {
		t.Fatalf("empty B should give empty product")
	}
}

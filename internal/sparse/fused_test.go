package sparse

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"graphblas/internal/parallel"
)

// randFloatCSR builds a CSR with arbitrary (sign-mixed, inexact) float
// values: fold order is observable in the low bits of the sums, which is
// exactly what the bit-exactness tests below need.
func randFloatCSR(rng *rand.Rand, nr, nc int, p float64) *CSR[float64] {
	var is, js []int
	var vs []float64
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			if rng.Float64() < p {
				is = append(is, i)
				js = append(js, j)
				vs = append(vs, rng.NormFloat64())
			}
		}
	}
	c, ok := BuildCSR(nr, nc, is, js, vs, nil)
	if !ok {
		panic("BuildCSR failed")
	}
	return c
}

func randFloatVec(rng *rand.Rand, n int, p float64) *Vec[float64] {
	v := NewVec[float64](n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			v.Idx = append(v.Idx, i)
			v.Val = append(v.Val, rng.NormFloat64())
		}
	}
	return v
}

// requireBitIdentical fails unless the two vectors are bitwise identical —
// same structure and bit-for-bit equal values, the regression bar for the
// parallel kernels and the fused kernels alike.
func requireBitIdentical(t *testing.T, label string, got, want *Vec[float64]) {
	t.Helper()
	if got.N != want.N || len(got.Idx) != len(want.Idx) {
		t.Fatalf("%s: shape differs: got n=%d nnz=%d, want n=%d nnz=%d", label, got.N, len(got.Idx), want.N, len(want.Idx))
	}
	for k := range got.Idx {
		if got.Idx[k] != want.Idx[k] {
			t.Fatalf("%s: index %d differs: got %d, want %d", label, k, got.Idx[k], want.Idx[k])
		}
		if math.Float64bits(got.Val[k]) != math.Float64bits(want.Val[k]) {
			t.Fatalf("%s: value at %d not bit-identical: got %x (%v), want %x (%v)",
				label, got.Idx[k], math.Float64bits(got.Val[k]), got.Val[k], math.Float64bits(want.Val[k]), want.Val[k])
		}
	}
}

// maskVariants returns the mask shapes every kernel pair is checked under.
func maskVariants(rng *rand.Rand, n int) map[string]*VecMask {
	stored := make([]int, 0, n)
	eff := make([]int, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0: // stored and true
			stored = append(stored, i)
			eff = append(eff, i)
		case 1: // stored but false
			stored = append(stored, i)
		}
	}
	return map[string]*VecMask{
		"nomask": nil,
		"mask":   {N: n, Idx: eff, Structure: stored},
		"comp":   {N: n, Idx: eff, Structure: stored, Comp: true},
	}
}

// vecStream adapts a materialized vector to the (n, idx, get) virtual form.
func vecStream(u *Vec[float64]) (int, []int, func(int) float64) {
	return u.N, u.Idx, func(p int) float64 { return u.Val[p] }
}

// TestFusedKernels_MatchMaterialized: each fused kernel over a
// materialized-vector stream must be bit-identical to its materializing
// counterpart, under every mask shape. This is the kernel half of the
// fusion byte-identity bar; the scheduler half lives in internal/core's
// differential tests.
func TestFusedKernels_MatchMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 64
	a := randFloatCSR(rng, n, n, 0.3)
	u := randFloatVec(rng, n, 0.5)
	c := randFloatVec(rng, n, 0.4)
	neg := func(x float64) float64 { return -3 * x }
	plus := func(x, y float64) float64 { return x + y }

	for name, mask := range maskVariants(rng, n) {
		t.Run("map/"+name, func(t *testing.T) {
			sn, sidx, get := vecStream(u)
			got := FusedVecMap(sn, sidx, get, neg, mask)
			// Reference: map then drop the positions the mask disallows —
			// exactly the entries the consumer's mask merge would discard.
			full := VecApply(u, neg)
			want := &Vec[float64]{N: full.N}
			cur := allowsCursor{mask: mask}
			for k, i := range full.Idx {
				if cur.allows(i) {
					want.Idx = append(want.Idx, i)
					want.Val = append(want.Val, full.Val[k])
				}
			}
			requireBitIdentical(t, "FusedVecMap/"+name, got, want)
		})
		t.Run("dot/"+name, func(t *testing.T) {
			sn, sidx, get := vecStream(u)
			got := FusedDotMxV(a, sn, sidx, get, mulF, addF, mask)
			want := DotMxV(a, u, mulF, addF, mask)
			requireBitIdentical(t, "FusedDotMxV/"+name, got, want)
		})
		t.Run("push/"+name, func(t *testing.T) {
			_, sidx, get := vecStream(u)
			got := FusedPushMxV(a, sidx, get, mulF, addF, mask)
			want := PushMxV(a, u, mulF, addF, mask)
			requireBitIdentical(t, "FusedPushMxV/"+name, got, want)
		})
	}

	// FusedAssignAccum carries no mask (the consumer's mask merge runs after
	// it); its reference is AssignExpandVec over the identity index list.
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	for _, accum := range []func(float64, float64) float64{nil, plus} {
		label := "assign/noaccum"
		if accum != nil {
			label = "assign/accum"
		}
		t.Run(label, func(t *testing.T) {
			_, sidx, get := vecStream(u)
			got := FusedAssignAccum(c, sidx, get, accum)
			want := AssignExpandVec(c, u, identity, accum)
			requireBitIdentical(t, label, got, want)
		})
	}
}

// TestFusedKernels_GetDiscipline: the virtual-source cursor is called
// exactly once per stream position; the streaming kernels additionally call
// it in increasing position order from one goroutine. Fused producers rely
// on this to observe the materialization evaluation schedule.
func TestFusedKernels_GetDiscipline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 32
	a := randFloatCSR(rng, n, n, 0.4)
	u := randFloatVec(rng, n, 0.7)
	c := randFloatVec(rng, n, 0.4)

	recorded := func() (func(int) float64, *[]int) {
		var calls []int
		return func(p int) float64 {
			calls = append(calls, p)
			return u.Val[p]
		}, &calls
	}
	requireOrdered := func(label string, calls []int) {
		t.Helper()
		if len(calls) != len(u.Idx) {
			t.Fatalf("%s: get called %d times, want once per position (%d)", label, len(calls), len(u.Idx))
		}
		for k, p := range calls {
			if p != k {
				t.Fatalf("%s: call %d was for position %d, want increasing order", label, k, p)
			}
		}
	}

	get, calls := recorded()
	FusedVecMap(u.N, u.Idx, get, func(x float64) float64 { return x }, nil)
	requireOrdered("map", *calls)

	get, calls = recorded()
	FusedDotMxV(a, u.N, u.Idx, get, mulF, addF, nil)
	requireOrdered("dot", *calls)

	get, calls = recorded()
	FusedAssignAccum(c, u.Idx, get, addF)
	requireOrdered("assign", *calls)

	// Below pushParallelMinWork the push kernel is the serial SPA pass and
	// the ordered contract holds there too.
	get, calls = recorded()
	FusedPushMxV(a, u.Idx, get, mulF, addF, nil)
	requireOrdered("push-serial", *calls)
}

// TestPushMxV_ParallelMatchesSerial is the regression test for the
// parallelized push kernel: the count/scatter/in-order-fold scheme must be
// bit-exact with the serial SPA pass for any worker count, because fold
// order is part of the engine's byte-identity bar (the DAG scheduler and
// the fusion pass both route through pushCore). Sign-mixed random floats
// make any reassociation visible in the result bits.
func TestPushMxV_ParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	cases := []struct {
		name   string
		nr, nc int
		pm, pv float64
	}{
		// ~3900 edges of frontier work: well past pushParallelMinWork, so
		// the parallel path really engages at workers > 1.
		{"large", 64, 64, 0.95, 0.98},
		// Rectangular, moderate density, still past the threshold.
		{"rect", 128, 48, 0.6, 0.9},
		// Tiny: below the threshold everywhere; both settings take the
		// serial pass and must still agree.
		{"small", 8, 8, 0.5, 0.5},
	}
	for _, tc := range cases {
		a := randFloatCSR(rng, tc.nr, tc.nc, tc.pm)
		u := randFloatVec(rng, tc.nr, tc.pv)
		for name, mask := range maskVariants(rng, tc.nc) {
			t.Run(tc.name+"/"+name, func(t *testing.T) {
				prev := parallel.SetMaxWorkers(1)
				serial := PushMxV(a, u, mulF, addF, mask)
				parallel.SetMaxWorkers(4)
				wide := PushMxV(a, u, mulF, addF, mask)
				parallel.SetMaxWorkers(prev)
				requireBitIdentical(t, "PushMxV workers=4 vs 1", wide, serial)
			})
		}
	}
}

// TestPushMxV_ParallelGetOnce: even on the parallel path the frontier
// accessor is consulted exactly once per position (chunks partition the
// frontier), which is what lets FusedPushMxV stream a producer through it.
func TestPushMxV_ParallelGetOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randFloatCSR(rng, 64, 64, 0.95)
	u := randFloatVec(rng, 64, 0.98)
	prev := parallel.SetMaxWorkers(4)
	defer parallel.SetMaxWorkers(prev)

	var mu sync.Mutex
	counts := make([]int, len(u.Idx))
	got := FusedPushMxV(a, u.Idx, func(p int) float64 {
		mu.Lock()
		counts[p]++
		mu.Unlock()
		return u.Val[p]
	}, mulF, addF, nil)
	for p, c := range counts {
		if c != 1 {
			t.Fatalf("frontier position %d evaluated %d times, want exactly once", p, c)
		}
	}
	requireBitIdentical(t, "FusedPushMxV parallel", got, PushMxV(a, u, mulF, addF, nil))
}

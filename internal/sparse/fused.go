package sparse

import (
	"graphblas/internal/faults"
	"graphblas/internal/obs"
	"graphblas/internal/pool"
)

// Fused kernels: each consumes a *virtual* vector — (n, idx, get) where idx
// lists stored positions in increasing order and get(p) yields the value at
// stream position p — instead of a materialized *Vec. The flush-time fusion
// pass (internal/core) wires a producer op's computation into get, so the
// producer's output is never built. Contract shared by all kernels here:
// get is called exactly once per stream position — in increasing position
// order on every path except pushCore's parallel scatter, which evaluates
// contiguous position chunks concurrently — so get must be a pure function
// of committed state (the core's sources are: closures over immutable
// committed stores). Values, and therefore results, are identical to
// materializing first regardless of evaluation order.
//
// Each kernel draws its own fault site ("fuse.kernel.*", registered in
// faults.KernelSites) and reports its own obs timing, so fused execution
// stays observable and fault-injectable as a first-class kernel.

// FusedVecMap is the fused form of apply-over-a-virtual-source: it maps f
// over the stream, keeping the structure. A non-nil mask is the consumer's
// write mask pushed down into the kernel: positions the mask disallows are
// skipped without evaluating f (the final mask merge would discard them
// anyway; skipping the evaluation is the point of the pushdown).
//
//grblint:hotpath
func FusedVecMap[DA, DC any](n int, idx []int, get func(p int) DA, f func(DA) DC, mask *VecMask) *Vec[DC] {
	faults.Step("fuse.kernel.map")
	done := obs.KernelStart("fuse.map")
	out := &Vec[DC]{N: n, Idx: make([]int, 0, len(idx)), Val: make([]DC, 0, len(idx))}
	cur := allowsCursor{mask: mask}
	for p, i := range idx {
		if !cur.allows(i) {
			continue
		}
		out.Idx = append(out.Idx, i)
		out.Val = append(out.Val, f(get(p)))
	}
	done(out.NVals())
	return out
}

// FusedDotMxV is the pull-style mxv over a virtual input vector: the stream
// is scattered into the dense workspace (evaluating get once per position),
// then the shared row-parallel dot loop runs. Bit-exact with
// materialize-then-DotMxV because the scatter visits positions in the same
// order VecApply would and the row loop is dotCore either way.
//
//grblint:hotpath
func FusedDotMxV[DA, DU, DC any](a *CSR[DA], n int, idx []int, get func(p int) DU, mul func(DA, DU) DC, add func(DC, DC) DC, mask *VecMask) *Vec[DC] {
	faults.Step("fuse.kernel.mxv.dot")
	done := obs.KernelStart("fuse.mxv.dot")
	dense := make([]DU, n)
	present := pool.GetBools(n)
	for p, i := range idx {
		dense[i] = get(p)
		present[i] = true
	}
	w := dotCore(a, dense, present, mul, add, mask)
	pool.PutBools(present)
	done(w.NVals())
	return w
}

// FusedPushMxV is the push-style mxv over a virtual frontier: pushCore
// evaluates get lazily, once per frontier entry (in traversal order on the
// serial path, chunk-concurrently on the parallel one), so the producer's
// values flow straight into the scatter without an intermediate vector.
// Bit-exact with materialize-then-PushMxV (pushCore is shared).
//
//grblint:hotpath
func FusedPushMxV[DA, DU, DC any](a *CSR[DA], idx []int, get func(p int) DU, mul func(DA, DU) DC, add func(DC, DC) DC, mask *VecMask) *Vec[DC] {
	faults.Step("fuse.kernel.mxv.push")
	done := obs.KernelStart("fuse.mxv.push")
	w := pushCore(a, idx, get, mul, add, mask)
	done(w.NVals())
	return w
}

// FusedAssignAccum is the fused form of the full-width assign w(:) = src
// over a virtual source: it produces the pre-mask Z content directly from
// the old content c and the stream, without materializing src. With accum
// it is the eWiseAdd union merge (positions in both combine, positions in
// one survive — exactly what AssignExpandVec over the identity index list
// computes); without accum the assignment replaces the content wholesale,
// so Z is the materialized stream. The caller applies its mask merge.
//
//grblint:hotpath
func FusedAssignAccum[D any](c *Vec[D], idx []int, get func(p int) D, accum func(D, D) D) *Vec[D] {
	faults.Step("fuse.kernel.assign.accum")
	done := obs.KernelStart("fuse.assign.accum")
	out := &Vec[D]{N: c.N}
	if accum == nil {
		out.Idx = make([]int, len(idx))
		out.Val = make([]D, len(idx))
		for p, i := range idx {
			out.Idx[p] = i
			out.Val[p] = get(p)
		}
		done(out.NVals())
		return out
	}
	pc := 0
	for p, i := range idx {
		v := get(p)
		for pc < len(c.Idx) && c.Idx[pc] < i {
			out.Idx = append(out.Idx, c.Idx[pc])
			out.Val = append(out.Val, c.Val[pc])
			pc++
		}
		if pc < len(c.Idx) && c.Idx[pc] == i {
			out.Idx = append(out.Idx, i)
			out.Val = append(out.Val, accum(c.Val[pc], v))
			pc++
		} else {
			out.Idx = append(out.Idx, i)
			out.Val = append(out.Val, v)
		}
	}
	out.Idx = append(out.Idx, c.Idx[pc:]...)
	out.Val = append(out.Val, c.Val[pc:]...)
	done(out.NVals())
	return out
}

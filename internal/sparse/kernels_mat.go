package sparse

import (
	"graphblas/internal/faults"
	"graphblas/internal/obs"
	"graphblas/internal/parallel"
)

// MatMask is a pre-resolved two-dimensional mask in CSR-pattern form (no
// values; masks have structure only once truthiness is resolved). The Eff
// arrays list positions whose stored mask value is true; the Str arrays list
// every stored position — the basis of the structural complement of Section
// III-C. The two may alias when every stored value is true.
type MatMask struct {
	NCols          int
	EffPtr, EffIdx []int
	StrPtr, StrIdx []int
	Comp           bool
}

// EffRow returns the effective-true column indices of row i.
func (m *MatMask) EffRow(i int) []int { return m.EffIdx[m.EffPtr[i]:m.EffPtr[i+1]] }

// StrRow returns the stored-structure column indices of row i.
func (m *MatMask) StrRow(i int) []int { return m.StrIdx[m.StrPtr[i]:m.StrPtr[i+1]] }

// rowMask builds the per-row VecMask view for row i. Cheap: slices alias the
// mask storage.
func (m *MatMask) rowMask(i int) VecMask {
	return VecMask{N: m.NCols, Idx: m.EffRow(i), Structure: m.StrRow(i), Comp: m.Comp}
}

// rowsView returns per-row index/value slices aliasing m's storage.
func rowsView[T any](m *CSR[T]) ([][]int, [][]T) {
	ri := make([][]int, m.NRows)
	rv := make([][]T, m.NRows)
	for i := 0; i < m.NRows; i++ {
		ri[i], rv[i] = m.Row(i)
	}
	return ri, rv
}

// UnionCSR computes the eWiseAdd merge of a and b row-parallel.
func UnionCSR[D any](a, b *CSR[D], add func(D, D) D) *CSR[D] {
	ri := make([][]int, a.NRows)
	rv := make([][]D, a.NRows)
	parallel.ForWeighted(a.NRows, a.Ptr, func(lo, hi int) {
		var idxArena []int
		var valArena []D
		offs := make([]int, 0, hi-lo+1)
		offs = append(offs, 0)
		for i := lo; i < hi; i++ {
			aIdx, aVal := a.Row(i)
			bIdx, bVal := b.Row(i)
			idxArena, valArena = unionRow(aIdx, aVal, bIdx, bVal, add, idxArena, valArena)
			offs = append(offs, len(idxArena))
		}
		for i := lo; i < hi; i++ {
			k := i - lo
			ri[i] = idxArena[offs[k]:offs[k+1]]
			rv[i] = valArena[offs[k]:offs[k+1]]
		}
	})
	return assemble(a.NRows, a.NCols, ri, rv)
}

// IntersectCSR computes the eWiseMult merge of a and b row-parallel.
func IntersectCSR[DA, DB, DC any](a *CSR[DA], b *CSR[DB], mul func(DA, DB) DC) *CSR[DC] {
	ri := make([][]int, a.NRows)
	rv := make([][]DC, a.NRows)
	parallel.ForWeighted(a.NRows, a.Ptr, func(lo, hi int) {
		var idxArena []int
		var valArena []DC
		offs := make([]int, 0, hi-lo+1)
		offs = append(offs, 0)
		for i := lo; i < hi; i++ {
			aIdx, aVal := a.Row(i)
			bIdx, bVal := b.Row(i)
			idxArena, valArena = intersectRow(aIdx, aVal, bIdx, bVal, mul, idxArena, valArena)
			offs = append(offs, len(idxArena))
		}
		for i := lo; i < hi; i++ {
			k := i - lo
			ri[i] = idxArena[offs[k]:offs[k+1]]
			rv[i] = valArena[offs[k]:offs[k+1]]
		}
	})
	return assemble(a.NRows, a.NCols, ri, rv)
}

// ApplyCSR maps f over the stored values of a, preserving structure.
func ApplyCSR[DA, DC any](a *CSR[DA], f func(DA) DC) *CSR[DC] {
	out := &CSR[DC]{NRows: a.NRows, NCols: a.NCols}
	out.Ptr = append([]int(nil), a.Ptr...)
	out.ColIdx = append([]int(nil), a.ColIdx...)
	out.Val = make([]DC, len(a.Val))
	parallel.For(len(a.Val), 4096, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			out.Val[k] = f(a.Val[k])
		}
	})
	return out
}

// ApplyIndexCSR maps f(value, row, col) over the stored entries of a.
func ApplyIndexCSR[DA, DC any](a *CSR[DA], f func(DA, int, int) DC) *CSR[DC] {
	out := &CSR[DC]{NRows: a.NRows, NCols: a.NCols}
	out.Ptr = append([]int(nil), a.Ptr...)
	out.ColIdx = append([]int(nil), a.ColIdx...)
	out.Val = make([]DC, len(a.Val))
	parallel.ForWeighted(a.NRows, a.Ptr, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
				out.Val[p] = f(a.Val[p], i, a.ColIdx[p])
			}
		}
	})
	return out
}

// SelectCSR keeps the entries of a for which pred(value, row, col) holds.
func SelectCSR[D any](a *CSR[D], pred func(D, int, int) bool) *CSR[D] {
	ri := make([][]int, a.NRows)
	rv := make([][]D, a.NRows)
	parallel.ForWeighted(a.NRows, a.Ptr, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var idx []int
			var val []D
			for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
				if pred(a.Val[p], i, a.ColIdx[p]) {
					idx = append(idx, a.ColIdx[p])
					val = append(val, a.Val[p])
				}
			}
			ri[i], rv[i] = idx, val
		}
	})
	return assemble(a.NRows, a.NCols, ri, rv)
}

// ReduceRowsCSR folds each row of a with the monoid operation, producing a
// sparse vector with entries only for nonempty rows (Table II "reduce").
// A non-nil term predicate stops each row's fold at the annihilator.
func ReduceRowsCSR[D any](a *CSR[D], add func(D, D) D, term func(D) bool) *Vec[D] {
	faults.Step("sparse.kernel.reduce.rows")
	done := obs.KernelStart("reduce.rows")
	out := &Vec[D]{N: a.NRows}
	for i := 0; i < a.NRows; i++ {
		lo, hi := a.Ptr[i], a.Ptr[i+1]
		if lo == hi {
			continue
		}
		acc := a.Val[lo]
		for p := lo + 1; p < hi; p++ {
			if term != nil && term(acc) {
				break
			}
			acc = add(acc, a.Val[p])
		}
		out.Idx = append(out.Idx, i)
		out.Val = append(out.Val, acc)
	}
	done(out.NVals())
	return out
}

// ReduceAllCSR folds every stored value of a with the monoid operation
// starting from identity; stored reports whether a had any entries. A
// non-nil term predicate stops the fold at the annihilator.
func ReduceAllCSR[D any](a *CSR[D], add func(D, D) D, identity D, term func(D) bool) (D, bool) {
	faults.Step("sparse.kernel.reduce.all")
	done := obs.KernelStart("reduce.all")
	acc := identity
	for _, v := range a.Val[:a.NNZ()] {
		acc = add(acc, v)
		if term != nil && term(acc) {
			break
		}
	}
	done(a.NNZ())
	return acc, a.NNZ() > 0
}

// MaskMergeCSR applies the final mask/replace write stage row-parallel. A
// nil mask admits every position and returns z itself (ownership transfer,
// as in MaskMergeVec); callers holding a shared z must clone first.
func MaskMergeCSR[D any](c, z *CSR[D], mask *MatMask, replace bool) *CSR[D] {
	if mask == nil {
		return z
	}
	ri := make([][]int, c.NRows)
	rv := make([][]D, c.NRows)
	parallel.For(c.NRows, 64, func(lo, hi int) {
		// Chunk-local arena (see SpGEMM): one allocation stream per chunk.
		var idxArena []int
		var valArena []D
		offs := make([]int, 0, hi-lo+1)
		offs = append(offs, 0)
		for i := lo; i < hi; i++ {
			cIdx, cVal := c.Row(i)
			zIdx, zVal := z.Row(i)
			rm := mask.rowMask(i)
			idxArena, valArena = maskMergeRow(cIdx, cVal, zIdx, zVal, &rm, replace, idxArena, valArena)
			offs = append(offs, len(idxArena))
		}
		for i := lo; i < hi; i++ {
			k := i - lo
			ri[i] = idxArena[offs[k]:offs[k+1]]
			rv[i] = valArena[offs[k]:offs[k+1]]
		}
	})
	return assemble(c.NRows, c.NCols, ri, rv)
}

// WriteCSR runs the full accumulate-then-mask pipeline for matrices.
func WriteCSR[D any](c, t *CSR[D], mask *MatMask, accum func(D, D) D, replace bool) *CSR[D] {
	z := t
	if accum != nil {
		z = UnionCSR(c, t, accum)
	}
	return MaskMergeCSR(c, z, mask, replace)
}

// ExtractCSR computes out(r, q) = a(rows[r], cols[q]). Duplicate indices are
// permitted in both lists (Table II "extract"); indices must be
// pre-validated by the caller.
func ExtractCSR[D any](a *CSR[D], rows, cols []int) *CSR[D] {
	// Map each source column to the list of output columns it feeds.
	colTargets := make([][]int, a.NCols)
	for q, j := range cols {
		colTargets[j] = append(colTargets[j], q)
	}
	nr := len(rows)
	ri := make([][]int, nr)
	rv := make([][]D, nr)
	parallel.For(nr, 32, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			src := rows[r]
			var idx []int
			var val []D
			for p := a.Ptr[src]; p < a.Ptr[src+1]; p++ {
				for _, q := range colTargets[a.ColIdx[p]] {
					idx = append(idx, q)
					val = append(val, a.Val[p])
				}
			}
			sortRow(idx, val)
			ri[r], rv[r] = idx, val
		}
	})
	return assemble(nr, len(cols), ri, rv)
}

// ExtractColCSR computes w(k) = a(rows[k], j): one column of a restricted to
// a row index list (the GrB_Col_extract form used in Figure 3).
func ExtractColCSR[D any](a *CSR[D], rows []int, j int) *Vec[D] {
	out := &Vec[D]{N: len(rows)}
	for k, i := range rows {
		if v, ok := a.Get(i, j); ok {
			out.Idx = append(out.Idx, k)
			out.Val = append(out.Val, v)
		}
	}
	return out
}

// sortRow sorts a row's (idx, val) pairs by idx. Extract can produce
// out-of-order duplicates; stable order of equal indices is irrelevant
// because duplicate output columns cannot collide (each q appears once).
func sortRow[D any](idx []int, val []D) {
	for i := 1; i < len(idx); i++ {
		xi, xv := idx[i], val[i]
		j := i - 1
		for j >= 0 && idx[j] > xi {
			idx[j+1], val[j+1] = idx[j], val[j]
			j--
		}
		idx[j+1], val[j+1] = xi, xv
	}
}

// AssignExpandCSR computes the Z content for c(rows, cols) = a per the
// assign semantics: within the assigned region entries are replaced by a's
// mapped entries (deleted where a has none, kept where accum is non-nil);
// outside it c is untouched. rows and cols must each be duplicate-free
// (validated by the caller).
func AssignExpandCSR[D any](c, a *CSR[D], rows, cols []int, accum func(D, D) D) *CSR[D] {
	ri, rv := rowsView(c)
	parallel.For(len(rows), 16, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			target := rows[k]
			es := make([]assignEntry[D], len(cols))
			arow := a.RowVec(k)
			pa := 0
			for l, j := range cols {
				es[l].target = j
				for pa < len(arow.Idx) && arow.Idx[pa] < l {
					pa++
				}
				if pa < len(arow.Idx) && arow.Idx[pa] == l {
					es[l].val = arow.Val[pa]
					es[l].has = true
				}
			}
			sortAssign(es)
			ri[target], rv[target] = mergeAssign(ri[target], rv[target], es, accum)
		}
	})
	return assemble(c.NRows, c.NCols, ri, rv)
}

// AssignScalarExpandCSR computes the Z content for c(rows, cols) = x: every
// assigned position receives x (combined with accum where an entry exists).
func AssignScalarExpandCSR[D any](c *CSR[D], x D, rows, cols []int, accum func(D, D) D) *CSR[D] {
	sortedCols := append([]int(nil), cols...)
	insertionSortInts(sortedCols)
	es := make([]assignEntry[D], len(sortedCols))
	for l, j := range sortedCols {
		es[l] = assignEntry[D]{target: j, val: x, has: true}
	}
	ri, rv := rowsView(c)
	parallel.For(len(rows), 16, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			target := rows[k]
			ri[target], rv[target] = mergeAssign(ri[target], rv[target], es, accum)
		}
	})
	return assemble(c.NRows, c.NCols, ri, rv)
}

// AssignRowExpandCSR computes Z for c(i, cols) = u (GrB_Row_assign).
func AssignRowExpandCSR[D any](c *CSR[D], u *Vec[D], i int, cols []int, accum func(D, D) D) *CSR[D] {
	ri, rv := rowsView(c)
	es := make([]assignEntry[D], len(cols))
	pu := 0
	for l, j := range cols {
		es[l].target = j
		for pu < len(u.Idx) && u.Idx[pu] < l {
			pu++
		}
		if pu < len(u.Idx) && u.Idx[pu] == l {
			es[l].val = u.Val[pu]
			es[l].has = true
		}
	}
	sortAssign(es)
	ri[i], rv[i] = mergeAssign(ri[i], rv[i], es, accum)
	return assemble(c.NRows, c.NCols, ri, rv)
}

// AssignColExpandCSR computes Z for c(rows, j) = u (GrB_Col_assign).
func AssignColExpandCSR[D any](c *CSR[D], u *Vec[D], rows []int, j int, accum func(D, D) D) *CSR[D] {
	ri, rv := rowsView(c)
	parallel.For(len(rows), 64, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			target := rows[k]
			uv, has := u.Get(k)
			es := []assignEntry[D]{{target: j, val: uv, has: has}}
			ri[target], rv[target] = mergeAssign(ri[target], rv[target], es, accum)
		}
	})
	return assemble(c.NRows, c.NCols, ri, rv)
}

// KronCSR computes the Kronecker product out = a ⊗ b with element
// combination mul (extension operation).
func KronCSR[DA, DB, DC any](a *CSR[DA], b *CSR[DB], mul func(DA, DB) DC) *CSR[DC] {
	nr := a.NRows * b.NRows
	nc := a.NCols * b.NCols
	out := &CSR[DC]{NRows: nr, NCols: nc, Ptr: make([]int, nr+1)}
	// Row (ia, ib) has len(a.Row(ia)) * len(b.Row(ib)) entries.
	for ia := 0; ia < a.NRows; ia++ {
		la := a.Ptr[ia+1] - a.Ptr[ia]
		for ib := 0; ib < b.NRows; ib++ {
			lb := b.Ptr[ib+1] - b.Ptr[ib]
			r := ia*b.NRows + ib
			out.Ptr[r+1] = out.Ptr[r] + la*lb
		}
	}
	nnz := out.Ptr[nr]
	out.ColIdx = make([]int, nnz)
	out.Val = make([]DC, nnz)
	parallel.For(a.NRows, 1, func(lo, hi int) {
		for ia := lo; ia < hi; ia++ {
			for ib := 0; ib < b.NRows; ib++ {
				r := ia*b.NRows + ib
				w := out.Ptr[r]
				for pa := a.Ptr[ia]; pa < a.Ptr[ia+1]; pa++ {
					base := a.ColIdx[pa] * b.NCols
					for pb := b.Ptr[ib]; pb < b.Ptr[ib+1]; pb++ {
						out.ColIdx[w] = base + b.ColIdx[pb]
						out.Val[w] = mul(a.Val[pa], b.Val[pb])
						w++
					}
				}
			}
		}
	})
	return out
}

// MergeColumn produces the final content for a column assign: out equals c
// everywhere except column j, where positions allowed by the (row-extent)
// mask take z's entry and disallowed positions keep c's entry unless replace
// deletes them. z must differ from c only in column j.
func MergeColumn[D any](c, z *CSR[D], j int, vm *VecMask, replace bool) *CSR[D] {
	ri := make([][]int, c.NRows)
	rv := make([][]D, c.NRows)
	cur := allowsCursor{mask: vm}
	for i := 0; i < c.NRows; i++ {
		allowed := cur.allows(i)
		cIdx, cVal := c.Row(i)
		if !allowed && !replace {
			ri[i], rv[i] = cIdx, cVal
			continue
		}
		// Rebuild the row without its column-j entry, then reinsert z's
		// entry when the mask admits it.
		var idx []int
		var val []D
		for p, col := range cIdx {
			if col == j {
				continue
			}
			idx = append(idx, col)
			val = append(val, cVal[p])
		}
		if zv, zok := z.Get(i, j); allowed && zok {
			pos := len(idx)
			for p, col := range idx {
				if col > j {
					pos = p
					break
				}
			}
			var zero D
			idx = append(idx, 0)
			val = append(val, zero)
			copy(idx[pos+1:], idx[pos:])
			copy(val[pos+1:], val[pos:])
			idx[pos] = j
			val[pos] = zv
		}
		ri[i], rv[i] = idx, val
	}
	return assemble(c.NRows, c.NCols, ri, rv)
}

// MergeRow produces the final content for a row assign: out equals c on all
// rows except row i, which is MaskMergeVec(c.row, z.row, vm, replace). The
// mask has column extent.
func MergeRow[D any](c, z *CSR[D], i int, vm *VecMask, replace bool) *CSR[D] {
	ri, rv := rowsView(c)
	cv := c.RowVec(i)
	zv := z.RowVec(i)
	merged := MaskMergeVec(&cv, &zv, vm, replace)
	ri[i], rv[i] = merged.Idx, merged.Val
	return assemble(c.NRows, c.NCols, ri, rv)
}

package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fullMask returns a mask admitting exactly the pattern of m.
func patternMask(m *CSR[float64], comp bool) *MatMask {
	return &MatMask{NCols: m.NCols, EffPtr: m.Ptr, EffIdx: m.ColIdx, StrPtr: m.Ptr, StrIdx: m.ColIdx, Comp: comp}
}

// Property: UnionCSR matches the dense-model union.
func TestQuickUnionCSR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr, nc := 1+rng.Intn(15), 1+rng.Intn(15)
		a, am := randCSR(rng, nr, nc, 0.35)
		b, bm := randCSR(rng, nr, nc, 0.35)
		u := UnionCSR(a, b, addF)
		want := map[[2]int]float64{}
		for k, v := range am {
			want[k] = v
		}
		for k, v := range bm {
			if cv, ok := want[k]; ok {
				want[k] = cv + v
			} else {
				want[k] = v
			}
		}
		if u.NNZ() != len(want) {
			return false
		}
		is, js, vs := u.Tuples()
		for k := range is {
			if want[[2]int{is[k], js[k]}] != vs[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: IntersectCSR matches the dense-model intersection.
func TestQuickIntersectCSR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr, nc := 1+rng.Intn(15), 1+rng.Intn(15)
		a, am := randCSR(rng, nr, nc, 0.45)
		b, bm := randCSR(rng, nr, nc, 0.45)
		u := IntersectCSR(a, b, mulF)
		count := 0
		for k, av := range am {
			if bv, ok := bm[k]; ok {
				count++
				if got, ok := u.Get(k[0], k[1]); !ok || got != av*bv {
					return false
				}
			}
		}
		return u.NNZ() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyAndWriteCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a, am := randCSR(rng, 10, 10, 0.4)
	neg := ApplyCSR(a, func(v float64) float64 { return -v })
	checkCSRInvariants(t, neg, "apply")
	is, js, vs := neg.Tuples()
	for k := range is {
		if vs[k] != -am[[2]int{is[k], js[k]}] {
			t.Fatalf("apply wrong at (%d,%d)", is[k], js[k])
		}
	}
	// WriteCSR with accumulator equals union.
	c, cm := randCSR(rng, 10, 10, 0.3)
	out := WriteCSR(c, neg, nil, addF, false)
	checkCSRInvariants(t, out, "write accum")
	oi, oj, ov := out.Tuples()
	for k := range oi {
		key := [2]int{oi[k], oj[k]}
		want := cm[key] - am[key] // accum(c, -a); missing entries are 0 in the model
		if ov[k] != want {
			t.Fatalf("write accum (%d,%d) got %v want %v", oi[k], oj[k], ov[k], want)
		}
	}
	// MaskMergeCSR with a complemented pattern mask and replace keeps only
	// z entries outside c's pattern... using c's own pattern as mask.
	z := ApplyCSR(a, func(v float64) float64 { return v * 10 })
	merged := MaskMergeCSR(c, z, patternMask(c, false), true)
	checkCSRInvariants(t, merged, "mask merge")
	mi, mj, mv := merged.Tuples()
	for k := range mi {
		key := [2]int{mi[k], mj[k]}
		if _, inC := cm[key]; !inC {
			t.Fatalf("masked merge leaked outside mask at %v", key)
		}
		if mv[k] != 10*am[key] {
			t.Fatalf("masked merge value at %v", key)
		}
	}
}

func TestExtractColCSR(t *testing.T) {
	a, _ := BuildCSR(4, 3, []int{0, 1, 3}, []int{1, 2, 1}, []float64{5, 6, 7}, nil)
	w := ExtractColCSR(a, []int{3, 0, 2}, 1)
	if w.N != 3 || w.NVals() != 2 {
		t.Fatalf("col extract %v %v", w.Idx, w.Val)
	}
	if v, ok := w.Get(0); !ok || v != 7 { // row 3 → output 0
		t.Fatalf("w(0) %v %v", v, ok)
	}
	if v, ok := w.Get(1); !ok || v != 5 { // row 0 → output 1
		t.Fatalf("w(1) %v %v", v, ok)
	}
}

func TestAssignKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c, cm := randCSR(rng, 8, 8, 0.3)

	t.Run("scalar block", func(t *testing.T) {
		out := AssignScalarExpandCSR(c, 9, []int{1, 5}, []int{0, 7}, nil)
		checkCSRInvariants(t, out, "scalar assign")
		for _, i := range []int{1, 5} {
			for _, j := range []int{0, 7} {
				if v, ok := out.Get(i, j); !ok || v != 9 {
					t.Fatalf("(%d,%d) not assigned", i, j)
				}
			}
		}
		// Outside region unchanged.
		for k, v := range cm {
			inRegion := (k[0] == 1 || k[0] == 5) && (k[1] == 0 || k[1] == 7)
			if !inRegion {
				if got, ok := out.Get(k[0], k[1]); !ok || got != v {
					t.Fatalf("outside region changed at %v", k)
				}
			}
		}
	})
	t.Run("matrix region with accum", func(t *testing.T) {
		sub, _ := BuildCSR(2, 2, []int{0, 1}, []int{0, 1}, []float64{100, 200}, nil)
		out := AssignExpandCSR(c, sub, []int{2, 4}, []int{3, 6}, addF)
		checkCSRInvariants(t, out, "assign accum")
		want := cm[[2]int{2, 3}] + 100
		if v, _ := out.Get(2, 3); v != want {
			t.Fatalf("(2,3) got %v want %v", v, want)
		}
		want = cm[[2]int{4, 6}] + 200
		if v, _ := out.Get(4, 6); v != want {
			t.Fatalf("(4,6) got %v want %v", v, want)
		}
		// accum keeps c where sub is empty: (2,6) and (4,3).
		if v, ok := out.Get(2, 6); ok != (cm[[2]int{2, 6}] != 0 || hasKey(cm, 2, 6)) || (ok && v != cm[[2]int{2, 6}]) {
			t.Fatalf("(2,6) got %v %v", v, ok)
		}
	})
	t.Run("row and col", func(t *testing.T) {
		u := &Vec[float64]{N: 8, Idx: []int{0, 4}, Val: []float64{1, 2}}
		out := AssignRowExpandCSR(c, u, 3, []int{0, 1, 2, 3, 4, 5, 6, 7}, nil)
		checkCSRInvariants(t, out, "row assign")
		if v, ok := out.Get(3, 0); !ok || v != 1 {
			t.Fatalf("row assign (3,0)")
		}
		if _, ok := out.Get(3, 2); ok {
			t.Fatalf("row assign should delete (3,2)")
		}
		out2 := AssignColExpandCSR(c, u, []int{0, 1, 2, 3, 4, 5, 6, 7}, 5, nil)
		checkCSRInvariants(t, out2, "col assign")
		if v, ok := out2.Get(0, 5); !ok || v != 1 {
			t.Fatalf("col assign (0,5)")
		}
		if v, ok := out2.Get(4, 5); !ok || v != 2 {
			t.Fatalf("col assign (4,5)")
		}
		if _, ok := out2.Get(2, 5); ok {
			t.Fatalf("col assign should delete (2,5)")
		}
	})
	t.Run("merge column and row", func(t *testing.T) {
		z := AssignColExpandCSR(c, &Vec[float64]{N: 8, Idx: []int{1}, Val: []float64{42}}, []int{0, 1, 2, 3, 4, 5, 6, 7}, 2, nil)
		all := make([]int, 8)
		for i := range all {
			all[i] = i
		}
		vm := &VecMask{N: 8, Idx: []int{1}, Structure: []int{1}}
		out := MergeColumn(c, z, 2, vm, true)
		checkCSRInvariants(t, out, "merge column")
		if v, ok := out.Get(1, 2); !ok || v != 42 {
			t.Fatalf("merge column kept %v %v", v, ok)
		}
		// replace deletes column-2 entries outside the mask...
		for i := 0; i < 8; i++ {
			if i == 1 {
				continue
			}
			if _, ok := out.Get(i, 2); ok {
				t.Fatalf("merge column left (%d,2)", i)
			}
		}
		// ...but other columns are untouched.
		for k, v := range cm {
			if k[1] != 2 {
				if got, ok := out.Get(k[0], k[1]); !ok || got != v {
					t.Fatalf("merge column disturbed %v", k)
				}
			}
		}
		zr := AssignRowExpandCSR(c, &Vec[float64]{N: 8, Idx: []int{3}, Val: []float64{7}}, 4, all, nil)
		rout := MergeRow(c, zr, 4, &VecMask{N: 8, Idx: []int{3}, Structure: []int{3}}, false)
		checkCSRInvariants(t, rout, "merge row")
		if v, ok := rout.Get(4, 3); !ok || v != 7 {
			t.Fatalf("merge row value %v %v", v, ok)
		}
		for k, v := range cm {
			if k[0] == 4 && k[1] == 3 {
				continue
			}
			if got, ok := rout.Get(k[0], k[1]); !ok || got != v {
				t.Fatalf("merge row disturbed %v", k)
			}
		}
	})
}

func hasKey(m map[[2]int]float64, i, j int) bool {
	_, ok := m[[2]int{i, j}]
	return ok
}

func TestCSRCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a, _ := randCSR(rng, 6, 6, 0.4)
	b := a.Clone()
	b.Set(0, 0, 999)
	if v, ok := a.Get(0, 0); ok && v == 999 {
		t.Fatal("clone shares storage")
	}
	a.Clear()
	if a.NNZ() != 0 {
		t.Fatal("clear")
	}
	if b.NNZ() == 0 {
		t.Fatal("clear affected clone")
	}
}

package sparse

import (
	"testing"

	"graphblas/internal/obs"
	"graphblas/internal/parallel"
)

// TestFusedKernelsDisabledPathAllocFree is the allocation-regression gate
// for the fused kernels, extending the obs package's
// TestDisabledPathAllocFree contract: with tracing disabled and one worker,
// each kernel's per-call allocation count is pinned exactly. The budgets
// below are the kernels' intrinsic output allocations — the result vector
// and its index/value storage, plus domain-generic scratch that cannot be
// pooled because its element type varies per instantiation. Everything else
// (presence flags, prefix sums, per-chunk counts) comes from internal/pool
// and must not show up here. A budget increase in a review means a new
// allocation crept onto the hot path; justify it or pool it.
func TestFusedKernelsDisabledPathAllocFree(t *testing.T) {
	parallel.SetMaxWorkersForTest(t, 1)
	prev := obs.SetTracer(nil)
	defer obs.SetTracer(prev)

	const n = 64
	// Deterministic fixtures: a fixed ~30%-dense matrix and ~50%-dense
	// vectors, built once so AllocsPerRun measures only the kernels.
	var is, js []int
	var vs []float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if (i*31+j*17)%10 < 3 {
				is = append(is, i)
				js = append(js, j)
				vs = append(vs, float64(i-j)+0.5)
			}
		}
	}
	a, ok := BuildCSR(n, n, is, js, vs, nil)
	if !ok {
		t.Fatal("BuildCSR failed")
	}
	u := NewVec[float64](n)
	for i := 0; i < n; i++ {
		if (i*13)%2 == 0 {
			u.Idx = append(u.Idx, i)
			u.Val = append(u.Val, float64(i)*0.25)
		}
	}
	c := NewVec[float64](n)
	for i := 0; i < n; i++ {
		if (i*7)%3 == 0 {
			c.Idx = append(c.Idx, i)
			c.Val = append(c.Val, float64(i))
		}
	}
	neg := func(x float64) float64 { return -x }
	get := func(p int) float64 { return u.Val[p] }

	cases := []struct {
		name   string
		budget float64
		run    func()
	}{
		// out Vec + Idx + Val.
		{"FusedVecMap", 3, func() { FusedVecMap(u.N, u.Idx, get, neg, nil) }},
		// dense scatter workspace + dotCore's rowOut + the escaping
		// ForWeighted body closure + FromDense's Vec, Idx, Val; the presence
		// flags (scatter and rowHas) are pooled.
		{"FusedDotMxV", 6, func() { FusedDotMxV(a, u.N, u.Idx, get, mulF, addF, nil) }},
		// Serial at one worker: SPA (struct + val + stamp) + Gather's idx and
		// val + out Vec; pushCore's cum prefix array is pooled.
		{"FusedPushMxV", 6, func() { FusedPushMxV(a, u.Idx, get, mulF, addF, nil) }},
		// out Vec + exact-length Idx + Val on the no-accum path.
		{"FusedAssignAccum", 3, func() { FusedAssignAccum(c, u.Idx, get, nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.run() // warm the pool shelves so steady state is measured
			if allocs := testing.AllocsPerRun(100, tc.run); allocs != tc.budget {
				t.Errorf("%s allocates %.1f per call, budget %.0f — a new hot-path allocation needs pooling or a reviewed budget bump", tc.name, allocs, tc.budget)
			}
		})
	}
}

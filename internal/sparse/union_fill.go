package sparse

import "graphblas/internal/parallel"

// UnionFill kernels implement the GxB_eWiseUnion-style merge: op applies on
// the union of structures, with absent operands replaced by caller-supplied
// fill values (alpha for missing a-entries, beta for missing b-entries).
// Unlike the plain union, this admits the full three-domain operator.

// unionFillRow merges one row/vector pair with fills, appending to its
// output slices.
func unionFillRow[DA, DB, DC any](aIdx []int, aVal []DA, bIdx []int, bVal []DB,
	op func(DA, DB) DC, alpha DA, beta DB, outIdx []int, outVal []DC) ([]int, []DC) {
	pa, pb := 0, 0
	for pa < len(aIdx) || pb < len(bIdx) {
		switch {
		case pb >= len(bIdx) || (pa < len(aIdx) && aIdx[pa] < bIdx[pb]):
			outIdx = append(outIdx, aIdx[pa])
			outVal = append(outVal, op(aVal[pa], beta))
			pa++
		case pa >= len(aIdx) || bIdx[pb] < aIdx[pa]:
			outIdx = append(outIdx, bIdx[pb])
			outVal = append(outVal, op(alpha, bVal[pb]))
			pb++
		default:
			outIdx = append(outIdx, aIdx[pa])
			outVal = append(outVal, op(aVal[pa], bVal[pb]))
			pa++
			pb++
		}
	}
	return outIdx, outVal
}

// VecUnionFill computes the filled union of two vectors.
func VecUnionFill[DA, DB, DC any](a *Vec[DA], b *Vec[DB], op func(DA, DB) DC, alpha DA, beta DB) *Vec[DC] {
	idx, val := unionFillRow(a.Idx, a.Val, b.Idx, b.Val, op, alpha, beta,
		make([]int, 0, len(a.Idx)+len(b.Idx)), make([]DC, 0, len(a.Idx)+len(b.Idx)))
	return &Vec[DC]{N: a.N, Idx: idx, Val: val}
}

// UnionFillCSR computes the filled union of two matrices row-parallel.
func UnionFillCSR[DA, DB, DC any](a *CSR[DA], b *CSR[DB], op func(DA, DB) DC, alpha DA, beta DB) *CSR[DC] {
	ri := make([][]int, a.NRows)
	rv := make([][]DC, a.NRows)
	parallel.ForWeighted(a.NRows, a.Ptr, func(lo, hi int) {
		var idxArena []int
		var valArena []DC
		offs := make([]int, 0, hi-lo+1)
		offs = append(offs, 0)
		for i := lo; i < hi; i++ {
			aIdx, aVal := a.Row(i)
			bIdx, bVal := b.Row(i)
			idxArena, valArena = unionFillRow(aIdx, aVal, bIdx, bVal, op, alpha, beta, idxArena, valArena)
			offs = append(offs, len(idxArena))
		}
		for i := lo; i < hi; i++ {
			k := i - lo
			ri[i] = idxArena[offs[k]:offs[k+1]]
			rv[i] = valArena[offs[k]:offs[k+1]]
		}
	})
	return assemble(a.NRows, a.NCols, ri, rv)
}

// Package sparse implements the storage substrate beneath the GraphBLAS
// objects: compressed sparse row (CSR) matrices, sorted sparse vectors, a
// coordinate-format builder, and the generic kernels (SpGEMM, SpMV/SpVM,
// union/intersection merges, transposition, slicing, reductions) that the
// core package composes into the Table-II operations of the paper.
//
// The package has no GraphBLAS semantics of its own: masks arrive as
// pre-resolved index patterns, semirings as plain Go functions. Everything is
// generic over the element type, mirroring the paper's separation between a
// collection and the algebra applied to it.
package sparse

import (
	"sort"
	"unsafe"
)

// Vec is a sparse vector of logical size N holding len(Idx) stored elements.
// Invariants: Idx is strictly increasing, len(Idx) == len(Val), and every
// index is in [0, N). Elements not stored are *undefined* (not implicit
// zeros), per Section III-A of the paper.
type Vec[T any] struct {
	N   int
	Idx []int
	Val []T
}

// NewVec returns an empty sparse vector of logical size n.
func NewVec[T any](n int) *Vec[T] { return &Vec[T]{N: n} }

// NVals reports the number of stored elements.
func (v *Vec[T]) NVals() int { return len(v.Idx) }

// ApproxBytes estimates the heap footprint of the vector storage for the
// observability layer's bytes-touched accounting.
func (v *Vec[T]) ApproxBytes() int64 {
	var elem T
	return int64(len(v.Idx))*int64(unsafe.Sizeof(int(0))) +
		int64(len(v.Val))*int64(unsafe.Sizeof(elem))
}

// Clone returns a deep copy of v.
func (v *Vec[T]) Clone() *Vec[T] {
	w := &Vec[T]{N: v.N}
	if len(v.Idx) > 0 {
		w.Idx = append([]int(nil), v.Idx...)
		w.Val = append([]T(nil), v.Val...)
	}
	return w
}

// Clear removes all stored elements, keeping the logical size.
func (v *Vec[T]) Clear() {
	v.Idx = v.Idx[:0]
	v.Val = v.Val[:0]
}

// find returns the position of index i in v.Idx and whether it is present.
// If absent, the returned position is the insertion point.
func (v *Vec[T]) find(i int) (int, bool) {
	p := sort.SearchInts(v.Idx, i)
	return p, p < len(v.Idx) && v.Idx[p] == i
}

// Get returns the element at index i and whether it is stored.
func (v *Vec[T]) Get(i int) (T, bool) {
	if p, ok := v.find(i); ok {
		return v.Val[p], true
	}
	var zero T
	return zero, false
}

// Has reports whether index i is stored.
func (v *Vec[T]) Has(i int) bool {
	_, ok := v.find(i)
	return ok
}

// Set stores value x at index i, overwriting any existing element.
func (v *Vec[T]) Set(i int, x T) {
	p, ok := v.find(i)
	if ok {
		v.Val[p] = x
		return
	}
	v.Idx = append(v.Idx, 0)
	v.Val = append(v.Val, x)
	copy(v.Idx[p+1:], v.Idx[p:])
	copy(v.Val[p+1:], v.Val[p:])
	v.Idx[p] = i
	v.Val[p] = x
}

// Remove deletes the element at index i if present and reports whether an
// element was removed.
func (v *Vec[T]) Remove(i int) bool {
	p, ok := v.find(i)
	if !ok {
		return false
	}
	v.Idx = append(v.Idx[:p], v.Idx[p+1:]...)
	v.Val = append(v.Val[:p], v.Val[p+1:]...)
	return true
}

// Resize changes the logical size to n, dropping stored elements at indices
// >= n.
func (v *Vec[T]) Resize(n int) {
	if n < v.N {
		p := sort.SearchInts(v.Idx, n)
		v.Idx = v.Idx[:p]
		v.Val = v.Val[:p]
	}
	v.N = n
}

// BuildVec constructs a sparse vector of size n from parallel index/value
// slices. Duplicate indices are combined with dup; if dup is nil duplicates
// are an error reported by returning ok == false. Indices out of range also
// report ok == false. The inputs are not modified.
func BuildVec[T any](n int, idx []int, val []T, dup func(T, T) T) (v *Vec[T], ok bool) {
	v = NewVec[T](n)
	if len(idx) != len(val) {
		return nil, false
	}
	if len(idx) == 0 {
		return v, true
	}
	perm := make([]int, len(idx))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return idx[perm[a]] < idx[perm[b]] })
	v.Idx = make([]int, 0, len(idx))
	v.Val = make([]T, 0, len(idx))
	for _, p := range perm {
		i := idx[p]
		if i < 0 || i >= n {
			return nil, false
		}
		if k := len(v.Idx); k > 0 && v.Idx[k-1] == i {
			if dup == nil {
				return nil, false
			}
			v.Val[k-1] = dup(v.Val[k-1], val[p])
			continue
		}
		v.Idx = append(v.Idx, i)
		v.Val = append(v.Val, val[p])
	}
	return v, true
}

// Tuples returns copies of the stored indices and values in index order.
func (v *Vec[T]) Tuples() ([]int, []T) {
	return append([]int(nil), v.Idx...), append([]T(nil), v.Val...)
}

// Dense scatters v into a freshly allocated dense slice of length v.N along
// with a presence bitmap. Useful for pull-style kernels and oracles.
func (v *Vec[T]) Dense() ([]T, []bool) {
	d := make([]T, v.N)
	p := make([]bool, v.N)
	for k, i := range v.Idx {
		d[i] = v.Val[k]
		p[i] = true
	}
	return d, p
}

// FromDense gathers the marked entries of a dense slice into a sparse vector.
func FromDense[T any](d []T, present []bool) *Vec[T] {
	// Count first so Idx/Val are allocated exactly once: the kernels that
	// funnel through here are hot paths with pinned per-call allocation
	// budgets, and append-growth from empty costs O(log nnz) reallocations.
	nnz := 0
	for _, p := range present {
		if p {
			nnz++
		}
	}
	v := &Vec[T]{N: len(d), Idx: make([]int, 0, nnz), Val: make([]T, 0, nnz)}
	for i := range d {
		if present[i] {
			v.Idx = append(v.Idx, i)
			v.Val = append(v.Val, d[i])
		}
	}
	return v
}

package sparse

import "sort"

// Pending-tuple support: SetElement/RemoveElement calls buffer as tuples
// (O(1) amortized each) and merge into the compressed storage in one pass
// when the collection is next read — the classic "pending tuples" design of
// production GraphBLAS implementations, where interleaved single-element
// updates would otherwise cost O(nnz) apiece.

// Tuple is one buffered single-element update. Del marks a removal.
type Tuple[D any] struct {
	I, J int
	V    D
	Del  bool
}

// ApplyTuples merges buffered updates into c in program order (the last
// update to a position wins, and a Del deletes it). Returns fresh storage;
// c is not modified.
func ApplyTuples[D any](c *CSR[D], ts []Tuple[D]) *CSR[D] {
	if len(ts) == 0 {
		return c
	}
	// Stable order by (row, col); sequence order breaks ties so the last
	// update survives the dedup below.
	perm := make([]int, len(ts))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ta, tb := ts[perm[a]], ts[perm[b]]
		if ta.I != tb.I {
			return ta.I < tb.I
		}
		return ta.J < tb.J
	})
	ri, rv := rowsView(c)
	// Walk groups of equal (i, j), keeping the last; emit one mergeAssign
	// per affected row.
	k := 0
	for k < len(perm) {
		row := ts[perm[k]].I
		var es []assignEntry[D]
		for k < len(perm) && ts[perm[k]].I == row {
			col := ts[perm[k]].J
			last := ts[perm[k]]
			for k < len(perm) && ts[perm[k]].I == row && ts[perm[k]].J == col {
				last = ts[perm[k]]
				k++
			}
			es = append(es, assignEntry[D]{target: col, val: last.V, has: !last.Del})
		}
		ri[row], rv[row] = mergeAssign(ri[row], rv[row], es, nil)
	}
	return assemble(c.NRows, c.NCols, ri, rv)
}

// ApplyVecTuples is the vector form of ApplyTuples; the J field of each
// tuple is ignored.
func ApplyVecTuples[D any](v *Vec[D], ts []Tuple[D]) *Vec[D] {
	if len(ts) == 0 {
		return v
	}
	perm := make([]int, len(ts))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return ts[perm[a]].I < ts[perm[b]].I })
	var es []assignEntry[D]
	k := 0
	for k < len(perm) {
		i := ts[perm[k]].I
		last := ts[perm[k]]
		for k < len(perm) && ts[perm[k]].I == i {
			last = ts[perm[k]]
			k++
		}
		es = append(es, assignEntry[D]{target: i, val: last.V, has: !last.Del})
	}
	idx, val := mergeAssign(v.Idx, v.Val, es, nil)
	return &Vec[D]{N: v.N, Idx: idx, Val: val}
}

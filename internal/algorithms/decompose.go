package algorithms

import (
	"graphblas/internal/builtins"
	"graphblas/internal/core"
)

// Structural decompositions expressed in GraphBLAS primitives. All expect a
// symmetric, loop-free boolean adjacency matrix.

// CoreNumbers computes the coreness of every vertex (the largest k such
// that the vertex survives k-core peeling) by incremental GraphBLAS
// peeling: each round removes vertices of degree < k, decrements their
// neighbors' degrees with one vxm, and records coreness k-1.
func CoreNumbers(a *core.Matrix[bool]) (*core.Vector[int64], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	// ones(A) for degree counting.
	ones, err := core.NewMatrix[int64](n, n)
	if err != nil {
		return nil, err
	}
	if err := core.ApplyM(ones, core.NoMask, core.NoAccum[int64](), builtins.CastBoolTo[int64](), a, nil); err != nil {
		return nil, err
	}
	// deg: every vertex gets an entry (0 for isolated), then row sums.
	deg, err := core.NewVector[int64](n)
	if err != nil {
		return nil, err
	}
	if err := core.AssignVectorScalar(deg, core.NoMaskV, core.NoAccum[int64](), 0, core.All, nil); err != nil {
		return nil, err
	}
	if err := core.ReduceMatrixToVector(deg, core.NoMaskV, builtins.Plus[int64](), builtins.PlusMonoid[int64](), ones, nil); err != nil {
		return nil, err
	}
	coreness, err := core.NewVector[int64](n)
	if err != nil {
		return nil, err
	}
	if err := core.AssignVectorScalar(coreness, core.NoMaskV, core.NoAccum[int64](), 0, core.All, nil); err != nil {
		return nil, err
	}
	toTrue := core.UnaryOp[int64, bool]{Name: "true", F: func(int64) bool { return true }}
	toOne := core.UnaryOp[int64, int64]{Name: "one", F: func(int64) int64 { return 1 }}
	carry := core.BinaryOp[int64, int64, int64]{Name: "carry", F: func(x int64, _ int64) int64 { return x }}
	plusCarry, err := core.NewSemiring(builtins.PlusMonoid[int64](), carry)
	if err != nil {
		return nil, err
	}
	compReplace := core.Desc().CompMask().ReplaceOutput()
	for k := int64(1); ; k++ {
		remaining, err := deg.NVals()
		if err != nil {
			return nil, err
		}
		if remaining == 0 {
			break
		}
		for {
			// peel = alive vertices with degree < k.
			lessK := core.IndexUnaryOp[int64, bool]{Name: "ltk", F: func(v int64, _, _ int) bool { return v < k }}
			peel, err := core.NewVector[int64](n)
			if err != nil {
				return nil, err
			}
			if err := core.SelectV(peel, core.NoMaskV, core.NoAccum[int64](), lessK, deg, nil); err != nil {
				return nil, err
			}
			np, err := peel.NVals()
			if err != nil {
				return nil, err
			}
			if np == 0 {
				break
			}
			// Boolean indicator of the peeled set (peel values may be 0, so
			// an explicit cast to true is required for mask use).
			peelInd, err := core.NewVector[bool](n)
			if err != nil {
				return nil, err
			}
			if err := core.ApplyV(peelInd, core.NoMaskV, core.NoAccum[bool](), toTrue, peel, nil); err != nil {
				return nil, err
			}
			// coreness<peel> = k-1.
			if err := core.AssignVectorScalar(coreness, peelInd, core.NoAccum[int64](), k-1, core.All, nil); err != nil {
				return nil, err
			}
			// delta(j) = number of peeled neighbors of j.
			peelOnes, err := core.NewVector[int64](n)
			if err != nil {
				return nil, err
			}
			if err := core.ApplyV(peelOnes, core.NoMaskV, core.NoAccum[int64](), toOne, peel, nil); err != nil {
				return nil, err
			}
			delta, err := core.NewVector[int64](n)
			if err != nil {
				return nil, err
			}
			if err := core.VxM(delta, core.NoMaskV, core.NoAccum[int64](), plusCarry, peelOnes, ones, nil); err != nil {
				return nil, err
			}
			// deg -= delta on the intersection (only alive entries change).
			dec, err := core.NewVector[int64](n)
			if err != nil {
				return nil, err
			}
			if err := core.EWiseMultV(dec, core.NoMaskV, core.NoAccum[int64](), builtins.Minus[int64](), deg, delta, nil); err != nil {
				return nil, err
			}
			if err := core.AssignVector(deg, delta, core.NoAccum[int64](), dec, core.All, nil); err != nil {
				return nil, err
			}
			// Remove the peeled vertices from deg (they are no longer alive).
			if err := core.ApplyV(deg, peelInd, core.NoAccum[int64](), builtins.Identity[int64](), deg, compReplace); err != nil {
				return nil, err
			}
		}
	}
	return coreness, nil
}

// KTruss computes the k-truss of the graph: the maximal subgraph in which
// every edge supports at least k-2 triangles, by the masked-multiply
// peeling C⟨C⟩ = C +.× C; keep edges with support ≥ k-2; repeat. The
// returned matrix holds each surviving edge with its triangle support.
func KTruss(a *core.Matrix[bool], k int) (*core.Matrix[int64], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	c, err := core.NewMatrix[int64](n, n)
	if err != nil {
		return nil, err
	}
	if err := core.ApplyM(c, core.NoMask, core.NoAccum[int64](), builtins.CastBoolTo[int64](), a, nil); err != nil {
		return nil, err
	}
	plusTimes := builtins.PlusTimes[int64]()
	replace := core.Desc().ReplaceOutput()
	support := core.IndexUnaryOp[int64, bool]{Name: "support", F: func(v int64, _, _ int) bool { return v >= int64(k-2) }}
	toOne := core.UnaryOp[int64, int64]{Name: "one", F: func(int64) int64 { return 1 }}
	last, err := c.NVals()
	if err != nil {
		return nil, err
	}
	for iter := 0; iter <= n*n; iter++ {
		// s⟨C⟩ = C +.× C — per-edge wedge (triangle) counts.
		s, err := core.NewMatrix[int64](n, n)
		if err != nil {
			return nil, err
		}
		if err := core.MxM(s, c, core.NoAccum[int64](), plusTimes, c, c, replace); err != nil {
			return nil, err
		}
		// keep edges with enough support (values = support counts).
		keep, err := core.NewMatrix[int64](n, n)
		if err != nil {
			return nil, err
		}
		if err := core.SelectM(keep, core.NoMask, core.NoAccum[int64](), support, s, nil); err != nil {
			return nil, err
		}
		nv, err := keep.NVals()
		if err != nil {
			return nil, err
		}
		if nv == last {
			return keep, nil
		}
		last = nv
		if nv == 0 {
			return keep, nil
		}
		// c = pattern(keep) as ones for the next round.
		if err := core.ApplyM(c, core.NoMask, core.NoAccum[int64](), toOne, keep, nil); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// ClusteringCoefficients computes the local clustering coefficient of every
// vertex: cc(v) = 2·tri(v) / (deg(v)·(deg(v)-1)). One masked multiply gives
// per-edge common-neighbor counts; its row sums are 2·tri(v).
func ClusteringCoefficients(a *core.Matrix[bool]) (*core.Vector[float64], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	ones, err := core.NewMatrix[float64](n, n)
	if err != nil {
		return nil, err
	}
	if err := core.ApplyM(ones, core.NoMask, core.NoAccum[float64](), builtins.CastBoolTo[float64](), a, nil); err != nil {
		return nil, err
	}
	// wedges⟨A⟩ = A +.× A : common neighbors per adjacent pair.
	wedges, err := core.NewMatrix[float64](n, n)
	if err != nil {
		return nil, err
	}
	if err := core.MxM(wedges, a, core.NoAccum[float64](), builtins.PlusTimes[float64](), ones, ones, core.Desc().ReplaceOutput()); err != nil {
		return nil, err
	}
	// tri2(v) = Σ_j wedges(v, j) = 2·tri(v).
	tri2, err := core.NewVector[float64](n)
	if err != nil {
		return nil, err
	}
	if err := core.ReduceMatrixToVector(tri2, core.NoMaskV, core.NoAccum[float64](), builtins.PlusMonoid[float64](), wedges, nil); err != nil {
		return nil, err
	}
	// deg(v).
	deg, err := core.NewVector[float64](n)
	if err != nil {
		return nil, err
	}
	if err := core.ReduceMatrixToVector(deg, core.NoMaskV, core.NoAccum[float64](), builtins.PlusMonoid[float64](), ones, nil); err != nil {
		return nil, err
	}
	// cc = tri2 / (deg·(deg-1)) on the intersection; vertices with deg < 2
	// produce no triangles, hence no tri2 entry, hence no cc entry — fill
	// explicit zeros for all vertices first so the result is total.
	cc, err := core.NewVector[float64](n)
	if err != nil {
		return nil, err
	}
	if err := core.AssignVectorScalar(cc, core.NoMaskV, core.NoAccum[float64](), 0, core.All, nil); err != nil {
		return nil, err
	}
	pairs := core.UnaryOp[float64, float64]{Name: "choose2", F: func(d float64) float64 { return d * (d - 1) }}
	denom, err := core.NewVector[float64](n)
	if err != nil {
		return nil, err
	}
	if err := core.ApplyV(denom, core.NoMaskV, core.NoAccum[float64](), pairs, deg, nil); err != nil {
		return nil, err
	}
	frac, err := core.NewVector[float64](n)
	if err != nil {
		return nil, err
	}
	if err := core.EWiseMultV(frac, core.NoMaskV, core.NoAccum[float64](), builtins.Div[float64](), tri2, denom, nil); err != nil {
		return nil, err
	}
	// cc⟨frac⟩ = frac (merge over the zero fill). frac values can be 0 only
	// if tri2 is 0, which cannot be stored (reduce of positive counts), so
	// truthiness is safe here.
	if err := core.AssignVector(cc, frac, core.NoAccum[float64](), frac, core.All, nil); err != nil {
		return nil, err
	}
	return cc, nil
}

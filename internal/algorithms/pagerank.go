package algorithms

import (
	"math"

	"graphblas/internal/builtins"
	"graphblas/internal/core"
)

// PageRank computes the damped PageRank vector of the directed graph A
// (any positive edge values; only the structure matters) by power
// iteration expressed in GraphBLAS primitives:
//
//	outdeg = ⊕_j A(i, j) structure count     (reduce)
//	share  = r ./ outdeg                     (eWiseMult)
//	r'     = (1-d)/n + d·dangling/n + d·(shareᵀ A)   (vxm over +.×)
//
// Dangling mass (vertices with no out-edges) is redistributed uniformly,
// matching the classic formulation. Iteration stops when the L1 change
// drops below tol or after maxIter sweeps; the achieved sweep count is
// returned.
func PageRank(a *core.Matrix[float64], damping, tol float64, maxIter int) (*core.Vector[float64], int, error) {
	return PageRankFrom(a, nil, damping, tol, maxIter)
}

// PageRankFrom is PageRank with a warm start: iteration resumes from the
// given rank vector instead of the uniform distribution. This is the
// incremental recomputation path of the streaming engine — after a batch of
// edge updates lands, restarting power iteration from the previous graph's
// converged ranks reaches the updated fixed point in a handful of sweeps,
// because a small perturbation of the graph moves the fixed point only
// slightly. start must be a dense vector of length NRows(a) (typically a
// previous PageRank result); nil start means the cold uniform start.
func PageRankFrom(a *core.Matrix[float64], start *core.Vector[float64], damping, tol float64, maxIter int) (*core.Vector[float64], int, error) {
	n, err := a.NRows()
	if err != nil {
		return nil, 0, err
	}
	// Out-degree as a count of stored entries: reduce over ⟨+,0⟩ after
	// mapping every entry to 1.
	ones, err := core.NewMatrix[float64](n, n)
	if err != nil {
		return nil, 0, err
	}
	if err := core.ApplyM(ones, core.NoMask, core.NoAccum[float64](), builtins.One[float64](), a, nil); err != nil {
		return nil, 0, err
	}
	outdeg, err := core.NewVector[float64](n)
	if err != nil {
		return nil, 0, err
	}
	if err := core.ReduceMatrixToVector(outdeg, core.NoMaskV, core.NoAccum[float64](), builtins.PlusMonoid[float64](), ones, nil); err != nil {
		return nil, 0, err
	}

	rank, err := core.NewVector[float64](n)
	if err != nil {
		return nil, 0, err
	}
	if start != nil {
		if err := core.AssignVector(rank, core.NoMaskV, core.NoAccum[float64](), start, core.All, nil); err != nil {
			return nil, 0, err
		}
	} else if err := core.AssignVectorScalar(rank, core.NoMaskV, core.NoAccum[float64](), 1/float64(n), core.All, nil); err != nil {
		return nil, 0, err
	}

	plusTimes := builtins.PlusTimes[float64]()
	plusMonoid := builtins.PlusMonoid[float64]()
	div := builtins.Div[float64]()

	share, err := core.NewVector[float64](n)
	if err != nil {
		return nil, 0, err
	}
	next, err := core.NewVector[float64](n)
	if err != nil {
		return nil, 0, err
	}

	iters := 0
	for ; iters < maxIter; iters++ {
		// share = rank ./ outdeg — intersection semantics drop dangling
		// vertices (no outdeg entry), which is exactly what we want.
		if err := core.EWiseMultV(share, core.NoMaskV, core.NoAccum[float64](), div, rank, outdeg, core.Desc().ReplaceOutput()); err != nil {
			return nil, 0, err
		}
		// Dangling mass: total rank minus mass that has out-edges.
		total, err := core.ReduceVectorToScalar(0, core.NoAccum[float64](), plusMonoid, rank)
		if err != nil {
			return nil, 0, err
		}
		withEdges, err := core.NewVector[float64](n)
		if err != nil {
			return nil, 0, err
		}
		if err := core.EWiseMultV(withEdges, core.NoMaskV, core.NoAccum[float64](), builtins.First[float64](), rank, outdeg, nil); err != nil {
			return nil, 0, err
		}
		linked, err := core.ReduceVectorToScalar(0, core.NoAccum[float64](), plusMonoid, withEdges)
		if err != nil {
			return nil, 0, err
		}
		dangling := total - linked

		// next = shareᵀ A over +.× : inbound contributions.
		if err := next.Clear(); err != nil {
			return nil, 0, err
		}
		if err := core.VxM(next, core.NoMaskV, core.NoAccum[float64](), plusTimes, share, ones, nil); err != nil {
			return nil, 0, err
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		// next = base + damping * next over all n positions: scale then fill-
		// accumulate so absent entries also get the base value.
		scale := core.UnaryOp[float64, float64]{Name: "damp", F: func(x float64) float64 { return damping * x }}
		if err := core.ApplyV(next, core.NoMaskV, core.NoAccum[float64](), scale, next, nil); err != nil {
			return nil, 0, err
		}
		if err := core.AssignVectorScalar(next, core.NoMaskV, builtins.Plus[float64](), base, core.All, nil); err != nil {
			return nil, 0, err
		}
		// L1 change.
		diffV, err := core.NewVector[float64](n)
		if err != nil {
			return nil, 0, err
		}
		absdiff := core.BinaryOp[float64, float64, float64]{Name: "absdiff", F: func(x, y float64) float64 { return math.Abs(x - y) }}
		if err := core.EWiseAddV(diffV, core.NoMaskV, core.NoAccum[float64](), absdiff, next, rank, nil); err != nil {
			return nil, 0, err
		}
		diff, err := core.ReduceVectorToScalar(0, core.NoAccum[float64](), plusMonoid, diffV)
		if err != nil {
			return nil, 0, err
		}
		// rank = next (swap by assign).
		if err := core.AssignVector(rank, core.NoMaskV, core.NoAccum[float64](), next, core.All, nil); err != nil {
			return nil, 0, err
		}
		if diff < tol {
			iters++
			break
		}
	}
	return rank, iters, nil
}

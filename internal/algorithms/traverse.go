package algorithms

import (
	"graphblas/internal/builtins"
	"graphblas/internal/core"
	"graphblas/internal/setalg"
)

// BFSLevels computes hop distances from source over the boolean ∨.∧
// semiring: the frontier expands with a masked vxm (the mask prunes
// discovered vertices, the paper's central mask idiom), and each new
// frontier is assigned its level. Unreached vertices have no entry.
func BFSLevels(a *core.Matrix[bool], source int) (*core.Vector[int32], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	levels, err := core.NewVector[int32](n)
	if err != nil {
		return nil, err
	}
	frontier, err := core.NewVector[bool](n)
	if err != nil {
		return nil, err
	}
	if err := frontier.SetElement(true, source); err != nil {
		return nil, err
	}
	lorLand := builtins.LorLand()
	descRC := core.Desc().ReplaceOutput().CompMask()
	for depth := int32(0); ; depth++ {
		// levels<frontier> = depth (merge mode: earlier levels kept).
		fIdx, _, err := frontier.ExtractTuples()
		if err != nil {
			return nil, err
		}
		if len(fIdx) == 0 {
			break
		}
		if err := core.AssignVectorScalar(levels, frontier, core.NoAccum[int32](), depth, core.All, nil); err != nil {
			return nil, err
		}
		// frontier<!levels> = frontier ∨.∧ A  (discover, pruning visited).
		if err := core.VxM(frontier, levels, core.NoAccum[bool](), lorLand, frontier, a, descRC); err != nil {
			return nil, err
		}
	}
	return levels, nil
}

// BFSParents computes a shortest-hop-tree parent for every reached vertex
// using the min-first semiring over vertex ids (smallest-index parent
// wins); the source is its own parent. Ids are stored 1-based internally so
// vertex 0 is distinguishable from "no entry", then shifted back.
func BFSParents(a *core.Matrix[bool], source int) (*core.Vector[int64], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	parents, err := core.NewVector[int64](n)
	if err != nil {
		return nil, err
	}
	if err := parents.SetElement(int64(source)+1, source); err != nil {
		return nil, err
	}
	// frontier carries candidate parent ids (1-based).
	frontier, err := core.NewVector[int64](n)
	if err != nil {
		return nil, err
	}
	if err := frontier.SetElement(int64(source)+1, source); err != nil {
		return nil, err
	}
	// id ⊗ A: propagate the source vertex's id along edges — min.first with
	// a mixed-domain ⊗ : int64 × bool → int64 selecting the id.
	mul := core.BinaryOp[int64, bool, int64]{Name: "first∘cast", F: func(id int64, _ bool) int64 { return id }}
	minFirst, err := core.NewSemiring(builtins.MinMonoid[int64](), mul)
	if err != nil {
		return nil, err
	}
	descRC := core.Desc().ReplaceOutput().CompMask()
	// The frontier must carry each vertex's own id to its neighbors, so
	// after discovery we overwrite values with the vertex indices.
	setOwnID := core.IndexUnaryOp[int64, int64]{Name: "rowid", F: func(_ int64, i, _ int) int64 { return int64(i) + 1 }}
	for {
		// Candidates' values become their own ids before expansion.
		if err := core.ApplyIndexOpV(frontier, core.NoMaskV, core.NoAccum[int64](), setOwnID, frontier, nil); err != nil {
			return nil, err
		}
		// frontier<!parents> = frontier min.first A.
		if err := core.VxM(frontier, parents, core.NoAccum[int64](), minFirst, frontier, a, descRC); err != nil {
			return nil, err
		}
		nv, err := frontier.NVals()
		if err != nil {
			return nil, err
		}
		if nv == 0 {
			break
		}
		// parents<frontier> = frontier (record parent ids).
		if err := core.AssignVector(parents, frontier, core.NoAccum[int64](), frontier, core.All, nil); err != nil {
			return nil, err
		}
	}
	// Shift ids back to 0-based.
	shift := core.UnaryOp[int64, int64]{Name: "minus1", F: func(x int64) int64 { return x - 1 }}
	if err := core.ApplyV(parents, core.NoMaskV, core.NoAccum[int64](), shift, parents, nil); err != nil {
		return nil, err
	}
	return parents, nil
}

// SSSP computes single-source shortest-path distances over the min-plus
// (tropical) semiring of Table I by Bellman-Ford iteration:
// d ⊙min= d min.+ A until a fixed point. Unreachable vertices have no
// entry. Weights must be nonnegative.
func SSSP(a *core.Matrix[float64], source int) (*core.Vector[float64], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	dist, err := core.NewVector[float64](n)
	if err != nil {
		return nil, err
	}
	if err := dist.SetElement(0, source); err != nil {
		return nil, err
	}
	minPlus := builtins.MinPlus[float64]()
	minOp := builtins.Min[float64]()
	for iter := 0; iter < n; iter++ {
		before, beforeVals, err := dist.ExtractTuples()
		if err != nil {
			return nil, err
		}
		// dist ⊙min= dist min.+ A (relax every edge out of the reached set).
		if err := core.VxM(dist, core.NoMaskV, minOp, minPlus, dist, a, nil); err != nil {
			return nil, err
		}
		after, afterVals, err := dist.ExtractTuples()
		if err != nil {
			return nil, err
		}
		if equalTuples(before, beforeVals, after, afterVals) {
			break
		}
	}
	return dist, nil
}

func equalTuples(ai []int, av []float64, bi []int, bv []float64) bool {
	if len(ai) != len(bi) {
		return false
	}
	for k := range ai {
		if ai[k] != bi[k] || av[k] != bv[k] {
			return false
		}
	}
	return true
}

// Reach computes, for every vertex, the set of the given source vertices
// that can reach it (including each source reaching itself), over the
// power-set semiring ⟨∪, ∩, ∅⟩ of Table I: each vertex carries a label set
// over the universe [0, len(sources)); the adjacency entries carry the full
// universe U (the ∩ identity), so l ∪.∩ A propagates each vertex's label
// set unchanged to its out-neighbors, and ∪ merges labels arriving over
// different edges. Iteration stops at the fixed point (≤ n sweeps).
func Reach(a *core.Matrix[bool], sources []int) (*core.Vector[setalg.Set], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	uni := len(sources)
	labels, err := core.NewVector[setalg.Set](n)
	if err != nil {
		return nil, err
	}
	for k, s := range sources {
		prev, perr := labels.ExtractElement(s)
		if perr != nil && !core.IsNoValue(perr) {
			return nil, perr
		}
		cur := setalg.SetOf(uni, k)
		if perr == nil {
			cur = cur.Union(prev)
		}
		if err := labels.SetElement(cur, s); err != nil {
			return nil, err
		}
	}
	// Lift the boolean adjacency into the set domain: every stored edge
	// carries U, the multiplicative identity.
	full := setalg.FullSet(uni)
	setA, err := core.NewMatrix[setalg.Set](n, n)
	if err != nil {
		return nil, err
	}
	lift := core.UnaryOp[bool, setalg.Set]{Name: "toU", F: func(bool) setalg.Set { return full }}
	if err := core.ApplyM(setA, core.NoMask, core.NoAccum[setalg.Set](), lift, a, nil); err != nil {
		return nil, err
	}
	unionIntersect := setalg.UnionIntersect(uni)
	unionOp := setalg.UnionOp(uni)
	for iter := 0; iter < n; iter++ {
		beforeIdx, beforeVals, err := labels.ExtractTuples()
		if err != nil {
			return nil, err
		}
		// labels ⊙∪= labels ∪.∩ A.
		if err := core.VxM(labels, core.NoMaskV, unionOp, unionIntersect, labels, setA, nil); err != nil {
			return nil, err
		}
		afterIdx, afterVals, err := labels.ExtractTuples()
		if err != nil {
			return nil, err
		}
		if equalSetTuples(beforeIdx, beforeVals, afterIdx, afterVals) {
			break
		}
	}
	return labels, nil
}

func equalSetTuples(ai []int, av []setalg.Set, bi []int, bv []setalg.Set) bool {
	if len(ai) != len(bi) {
		return false
	}
	for k := range ai {
		if ai[k] != bi[k] || !av[k].Equal(bv[k]) {
			return false
		}
	}
	return true
}

package algorithms

import (
	"math"
	"sort"
	"testing"

	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
)

func symGraphs() map[string]*generate.Graph {
	return map[string]*generate.Graph{
		"path10":    generate.Path(10).Symmetrize().Dedup(true),
		"cycle8":    generate.Cycle(8).Symmetrize().Dedup(true),
		"complete7": generate.Complete(7).Symmetrize().Dedup(true),
		"star9":     generate.Star(9).Symmetrize().Dedup(true),
		"grid5x4":   generate.Grid2D(5, 4).Symmetrize().Dedup(true),
		"er120":     generate.ErdosRenyiGnm(120, 700, 5).Symmetrize().Dedup(true),
		"rmat7":     generate.RMAT(7, 6, 11).Symmetrize().Dedup(true),
	}
}

func TestCoreNumbers_AgainstPeeling(t *testing.T) {
	for name, g := range symGraphs() {
		t.Run(name, func(t *testing.T) {
			adj := refalgo.NewAdjacency(g)
			want := refalgo.CoreNumbers(adj)
			a := boolMatrix(t, g)
			cores, err := CoreNumbers(a)
			if err != nil {
				t.Fatalf("CoreNumbers: %v", err)
			}
			idx, val, _ := cores.ExtractTuples()
			if len(idx) != g.N {
				t.Fatalf("coreness incomplete: %d of %d", len(idx), g.N)
			}
			got := make([]int, g.N)
			for k := range idx {
				got[idx[k]] = int(val[k])
			}
			for v := 0; v < g.N; v++ {
				if got[v] != want[v] {
					t.Errorf("core[%d]: got %d want %d", v, got[v], want[v])
				}
			}
		})
	}
}

func TestCoreNumbers_Known(t *testing.T) {
	// K4 plus a pendant vertex: K4 members have coreness 3, pendant 1.
	g := generate.Complete(4)
	g.N = 5
	g.Edges = append(g.Edges,
		generate.Edge{Src: 3, Dst: 4, Weight: 1}, generate.Edge{Src: 4, Dst: 3, Weight: 1})
	g = g.Symmetrize().Dedup(true)
	a := boolMatrix(t, g)
	cores, err := CoreNumbers(a)
	if err != nil {
		t.Fatalf("CoreNumbers: %v", err)
	}
	idx, val, _ := cores.ExtractTuples()
	got := make([]int64, g.N)
	for k := range idx {
		got[idx[k]] = val[k]
	}
	want := []int64{3, 3, 3, 3, 1}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("coreness %v want %v", got, want)
		}
	}
}

func TestKTruss_AgainstPeeling(t *testing.T) {
	for name, g := range symGraphs() {
		t.Run(name, func(t *testing.T) {
			adj := refalgo.NewAdjacency(g)
			a := boolMatrix(t, g)
			for _, k := range []int{3, 4} {
				wantEdges := refalgo.TrussEdges(adj, k)
				truss, err := KTruss(a, k)
				if err != nil {
					t.Fatalf("KTruss(%d): %v", k, err)
				}
				is, js, _, _ := truss.ExtractTuples()
				var got [][2]int
				for p := range is {
					if is[p] < js[p] {
						got = append(got, [2]int{is[p], js[p]})
					}
				}
				sortPairs(got)
				sortPairs(wantEdges)
				if len(got) != len(wantEdges) {
					t.Fatalf("k=%d: %d edges, want %d", k, len(got), len(wantEdges))
				}
				for i := range got {
					if got[i] != wantEdges[i] {
						t.Fatalf("k=%d edge %d: got %v want %v", k, i, got[i], wantEdges[i])
					}
				}
			}
		})
	}
}

func sortPairs(ps [][2]int) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a][0] != ps[b][0] {
			return ps[a][0] < ps[b][0]
		}
		return ps[a][1] < ps[b][1]
	})
}

func TestKTruss_Known(t *testing.T) {
	// Two triangles sharing an edge = 4-clique minus one edge. The 3-truss
	// keeps everything; the 4-truss of K4 keeps K4; of the shared-edge
	// bowtie keeps nothing.
	k4 := generate.Complete(4).Symmetrize().Dedup(true)
	a := boolMatrix(t, k4)
	truss4, err := KTruss(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nv, _ := truss4.NVals(); nv != 12 { // all of K4 survives (support 2 ≥ 2)
		t.Fatalf("K4 4-truss edges %d want 12", nv)
	}
	truss5, err := KTruss(a, 5)
	if err != nil {
		t.Fatal(err)
	}
	if nv, _ := truss5.NVals(); nv != 0 {
		t.Fatalf("K4 5-truss should be empty, got %d", nv)
	}
}

func TestClusteringCoefficients_AgainstDirect(t *testing.T) {
	for name, g := range symGraphs() {
		t.Run(name, func(t *testing.T) {
			adj := refalgo.NewAdjacency(g)
			want := refalgo.ClusteringCoefficients(adj)
			a := boolMatrix(t, g)
			cc, err := ClusteringCoefficients(a)
			if err != nil {
				t.Fatalf("ClusteringCoefficients: %v", err)
			}
			idx, val, _ := cc.ExtractTuples()
			if len(idx) != g.N {
				t.Fatalf("cc incomplete: %d of %d", len(idx), g.N)
			}
			got := make([]float64, g.N)
			for k := range idx {
				got[idx[k]] = val[k]
			}
			for v := 0; v < g.N; v++ {
				if math.Abs(got[v]-want[v]) > 1e-9 {
					t.Errorf("cc[%d]: got %v want %v", v, got[v], want[v])
				}
			}
		})
	}
	// Known values: complete graph cc=1 everywhere; path cc=0.
	k5 := generate.Complete(5).Symmetrize().Dedup(true)
	cc, err := ClusteringCoefficients(boolMatrix(t, k5))
	if err != nil {
		t.Fatal(err)
	}
	_, val, _ := cc.ExtractTuples()
	for _, v := range val {
		if v != 1 {
			t.Fatalf("K5 cc %v", val)
		}
	}
}

func TestGreedyColor_ProperColoring(t *testing.T) {
	for name, g := range symGraphs() {
		t.Run(name, func(t *testing.T) {
			adj := refalgo.NewAdjacency(g)
			a := boolMatrix(t, g)
			colors, used, err := GreedyColor(a, 321)
			if err != nil {
				t.Fatalf("GreedyColor: %v", err)
			}
			idx, val, _ := colors.ExtractTuples()
			if len(idx) != g.N {
				t.Fatalf("colored %d of %d", len(idx), g.N)
			}
			col := make([]int64, g.N)
			for k := range idx {
				col[idx[k]] = val[k]
			}
			// Proper: no edge joins equal colors.
			for v := 0; v < g.N; v++ {
				for _, u := range adj.Neighbors(v) {
					if u != v && col[u] == col[v] {
						t.Fatalf("edge (%d,%d) same color %d", v, u, col[v])
					}
				}
			}
			// Bounded by Δ+1.
			maxDeg := 0
			for v := 0; v < g.N; v++ {
				if d := len(adj.Neighbors(v)); d > maxDeg {
					maxDeg = d
				}
			}
			if used > maxDeg+1 {
				t.Fatalf("used %d colors, Δ+1 = %d", used, maxDeg+1)
			}
		})
	}
	// Known: complete graph needs exactly n colors; bipartite grid needs 2.
	k6 := generate.Complete(6).Symmetrize().Dedup(true)
	_, used, err := GreedyColor(boolMatrix(t, k6), 1)
	if err != nil || used != 6 {
		t.Fatalf("K6 colors %d (%v)", used, err)
	}
	grid := generate.Grid2D(4, 4).Symmetrize().Dedup(true)
	_, used, err = GreedyColor(boolMatrix(t, grid), 1)
	if err != nil || used < 2 || used > 4 {
		t.Fatalf("grid colors %d (%v)", used, err)
	}
}

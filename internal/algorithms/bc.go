// Package algorithms implements graph algorithms expressed in GraphBLAS
// primitives, headlined by the paper's Section VII batched betweenness
// centrality (Figure 3), plus the classic suite the GraphBLAS literature
// motivates: BFS (levels and parents), single-source shortest paths over
// the min-plus semiring, PageRank, masked-multiply triangle counting,
// label-propagation connected components, Luby's maximal independent set,
// and multi-source reachability over the power-set semiring.
//
// Every function is written against the public operation set only — no
// reaching into storage — so the package doubles as a workout of the API's
// expressiveness, exactly how the paper uses BC_update.
package algorithms

import (
	"graphblas/internal/builtins"
	"graphblas/internal/core"
)

// BCUpdate computes the batched Brandes betweenness-centrality updates of
// Figure 3: given the n×n unweighted adjacency matrix A (stored 1s of
// domain int32, as in the paper) and a batch s of source vertices, it
// returns the vector delta of BC contributions from shortest paths starting
// at those sources.
//
// The implementation is a line-for-line port of the paper's BC_update; the
// comments cite the corresponding Figure 3 lines. Where the C API performs
// implicit domain casts, this port uses explicit cast operators and
// mixed-domain semirings (the three-domain generality of Section III-B).
func BCUpdate(a *core.Matrix[int32], s []int) (*core.Vector[float32], error) {
	n, err := a.NRows() // line 6: n = # of vertices
	if err != nil {
		return nil, err
	}
	nsver := len(s)
	if nsver == 0 {
		return nil, &core.Error{Info: core.InvalidValue, Op: "BCUpdate", Msg: "empty source batch"}
	}

	delta, err := core.NewVector[float32](n) // line 7: Vector<float> delta(n)
	if err != nil {
		return nil, err
	}

	int32Add := builtins.PlusMonoid[int32]()   // lines 9-10: Monoid<int32,+,0>
	int32AddMul := builtins.PlusTimes[int32]() // lines 11-12: Semiring<int32,+,*,0>

	// lines 14-18: descriptor desc_tsr — transpose INP0, complement the
	// mask structurally, replace the output.
	descTSR := core.Desc().Transpose0().CompMask().ReplaceOutput()

	// lines 20-29: numsp holds discovered vertices and shortest-path counts;
	// numsp[s[i], i] = 1.
	iNsver := make([]int, nsver)
	ones := make([]int32, nsver)
	for i := 0; i < nsver; i++ {
		iNsver[i] = i
		ones[i] = 1
	}
	numsp, err := core.NewMatrix[int32](n, nsver)
	if err != nil {
		return nil, err
	}
	if err := numsp.Build(s, iNsver, ones, builtins.PlusINT32); err != nil {
		return nil, err
	}

	// lines 31-33: frontier initialized to the out-neighbors of each source,
	// via extract of Aᵀ columns s under the complemented numsp mask.
	frontier, err := core.NewMatrix[int32](n, nsver)
	if err != nil {
		return nil, err
	}
	if err := core.ExtractSubmatrix(frontier, numsp, core.NoAccum[int32](), a, core.All, s, descTSR); err != nil {
		return nil, err
	}

	// line 36: sigmas — one boolean frontier snapshot per BFS level; the
	// graph diameter (≤ n) bounds how many are needed.
	sigmas := make([]*core.Matrix[bool], 0, 8)

	d := int32(0) // line 37: BFS level
	// lines 39-46: the BFS phase (forward sweep).
	for {
		sigma, err := core.NewMatrix[bool](n, nsver) // line 40
		if err != nil {
			return nil, err
		}
		// line 41: sigmas[d] = (bool) frontier (GrB_IDENTITY_BOOL cast).
		if err := core.ApplyM(sigma, core.NoMask, core.NoAccum[bool](), builtins.CastToBool[int32](), frontier, nil); err != nil {
			return nil, err
		}
		sigmas = append(sigmas, sigma)
		// line 42: numsp += frontier (accumulate path counts).
		if err := core.EWiseAddMonoidM(numsp, core.NoMask, core.NoAccum[int32](), int32Add, numsp, frontier, nil); err != nil {
			return nil, err
		}
		// line 43: frontier<!numsp> = Aᵀ +.* frontier (expand and prune).
		if err := core.MxM(frontier, numsp, core.NoAccum[int32](), int32AddMul, a, frontier, descTSR); err != nil {
			return nil, err
		}
		// line 44: number of vertices in the new frontier.
		nvals, err := frontier.NVals()
		if err != nil {
			return nil, err
		}
		d++ // line 45
		if nvals == 0 {
			break // line 46
		}
	}

	fp32Add := builtins.PlusMonoid[float32]()   // lines 48-49
	fp32AddMul := builtins.PlusTimes[float32]() // lines 52-53
	_ = fp32AddMul

	// lines 55-57: nspinv = 1 ./ numsp. The C API's implicit int32→fp32
	// cast composed with GrB_MINV_FP32 becomes one explicit unary operator.
	nspinv, err := core.NewMatrix[float32](n, nsver)
	if err != nil {
		return nil, err
	}
	minvCast := core.UnaryOp[int32, float32]{Name: "minv_fp32∘cast", F: func(x int32) float32 { return 1 / float32(x) }}
	if err := core.ApplyM(nspinv, core.NoMask, core.NoAccum[float32](), minvCast, numsp, nil); err != nil {
		return nil, err
	}

	// lines 59-61: bcu filled with 1 to avoid sparsity issues.
	bcu, err := core.NewMatrix[float32](n, nsver)
	if err != nil {
		return nil, err
	}
	if err := core.AssignMatrixScalar(bcu, core.NoMask, core.NoAccum[float32](), 1, core.All, core.All, nil); err != nil {
		return nil, err
	}

	// lines 63-65: desc_r — replace output when a mask is used.
	descR := core.Desc().ReplaceOutput()

	// line 68: temporary workspace.
	w, err := core.NewMatrix[float32](n, nsver)
	if err != nil {
		return nil, err
	}

	// The A +.* w multiply of line 73 carries the C API's implicit
	// int32→fp32 cast of A's values; here it is the mixed-domain semiring
	// ⟨fp32, +, ⊗⟩ with ⊗ : int32 × fp32 → fp32.
	castMul := core.BinaryOp[int32, float32, float32]{Name: "times∘cast", F: func(x int32, y float32) float32 { return float32(x) * y }}
	fp32AddCastMul, err := core.NewSemiring(fp32Add, castMul)
	if err != nil {
		return nil, err
	}
	// The bcu += w .* numsp of line 74 likewise multiplies fp32 by int32.
	castMul2 := core.BinaryOp[float32, int32, float32]{Name: "times∘cast", F: func(x float32, y int32) float32 { return x * float32(y) }}

	// lines 69-75: the tally phase (backward sweep).
	for i := int(d) - 1; i > 0; i-- {
		// line 70: w<sigmas[i]> = bcu .* nspinv (replace).
		if err := core.EWiseMultM(w, sigmas[i], core.NoAccum[float32](), builtins.Times[float32](), bcu, nspinv, descR); err != nil {
			return nil, err
		}
		// line 73: w<sigmas[i-1]> = A +.* w (replace): contributions flow to
		// BFS-tree parents.
		if err := core.MxM(w, sigmas[i-1], core.NoAccum[float32](), fp32AddCastMul, a, w, descR); err != nil {
			return nil, err
		}
		// line 74: bcu += w .* numsp.
		if err := core.EWiseMultM(bcu, core.NoMask, builtins.PlusFP32, castMul2, w, numsp, nil); err != nil {
			return nil, err
		}
	}

	// line 77: delta = -nsver everywhere (each bcu entry carries a bias of
	// exactly 1 from the initial fill).
	if err := core.AssignVectorScalar(delta, core.NoMaskV, core.NoAccum[float32](), -float32(nsver), core.All, nil); err != nil {
		return nil, err
	}
	// line 78: delta += Σ_j bcu(:, j).
	if err := core.ReduceMatrixToVector(delta, core.NoMaskV, builtins.PlusFP32, fp32Add, bcu, nil); err != nil {
		return nil, err
	}

	// lines 80-82: resource cleanup is the garbage collector's job in Go;
	// the opaque objects simply go out of scope.
	return delta, nil
}

// BCAll computes exact betweenness centrality for every vertex by running
// the Figure 3 batched BC_update over all sources, batchSize sources at a
// time, accumulating the per-batch deltas. This is the classic use of the
// batched formulation: the batch size trades memory (n × batch work
// matrices) against the number of sweeps.
func BCAll(a *core.Matrix[int32], batchSize int) (*core.Vector[float32], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	if batchSize <= 0 {
		batchSize = 32
	}
	total, err := core.NewVector[float32](n)
	if err != nil {
		return nil, err
	}
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		batch := make([]int, hi-lo)
		for i := range batch {
			batch[i] = lo + i
		}
		delta, err := BCUpdate(a, batch)
		if err != nil {
			return nil, err
		}
		if err := core.EWiseAddV(total, core.NoMaskV, core.NoAccum[float32](),
			builtins.Plus[float32](), total, delta, nil); err != nil {
			return nil, err
		}
	}
	return total, nil
}

package algorithms

import (
	"testing"

	"graphblas/internal/core"
	"graphblas/internal/faults"
	"graphblas/internal/format"
	"graphblas/internal/refalgo"
)

// TestBFSLevels_UnderKernelFaults: with the adjacency pinned to the
// hypersparse layout and every hypersparse MxV kernel call failing by
// injection, a whole BFS still completes with answers identical to the
// queue-based reference — each failed fast path is transparently re-executed
// on the CSR path — and the retries are visible in the engine stats.
func TestBFSLevels_UnderKernelFaults(t *testing.T) {
	t.Cleanup(faults.Disable)
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			adj := refalgo.NewAdjacency(g)
			a := boolMatrix(t, g)
			if err := a.SetFormat(format.HyperKind); err != nil {
				t.Fatalf("SetFormat: %v", err)
			}
			// The glob covers both hypersparse MxV kernels — the dot kernel at
			// "format.kernel.hyper.mxv" and the push kernel at
			// "format.kernel.hyper.mxv.push" — which previously shared one
			// site literal.
			faults.Configure(1, faults.Rule{Site: "format.kernel.hyper.mxv*", Kind: faults.KernelErr})
			base := core.StatsSnapshot().KernelRetries
			want := refalgo.BFSLevels(adj, 0)
			levels, err := BFSLevels(a, 0)
			if err != nil {
				t.Fatalf("BFSLevels under injection: %v", err)
			}
			faults.Disable()
			idx, val, err := levels.ExtractTuples()
			if err != nil {
				t.Fatalf("ExtractTuples: %v", err)
			}
			got := make([]int, g.N)
			for i := range got {
				got[i] = -1
			}
			for k := range idx {
				got[idx[k]] = int(val[k])
			}
			for v := 0; v < g.N; v++ {
				if got[v] != want[v] {
					t.Errorf("level[%d]: got %d want %d", v, got[v], want[v])
				}
			}
			if st := core.StatsSnapshot(); st.KernelRetries == base {
				t.Fatalf("no kernel retries recorded: %+v", st)
			}
		})
	}
}

// TestBFSLevels_UnderAllocGovernor: with the adjacency pinned hypersparse
// but the allocation budget starved below even the row-index arrays, the
// layout conversion itself is denied as OutOfMemory on every attempt; BFS
// still matches the reference, running entirely on the CSR path.
func TestBFSLevels_UnderAllocGovernor(t *testing.T) {
	g := testGraphs()["er200"]
	adj := refalgo.NewAdjacency(g)
	a := boolMatrix(t, g)
	if err := a.SetFormat(format.HyperKind); err != nil {
		t.Fatalf("SetFormat: %v", err)
	}
	prev := faults.SetAllocBudget(512) // er200 hyper conversion wants 200*16 bytes
	t.Cleanup(func() { faults.SetAllocBudget(prev) })
	base := faults.InjectedCount()
	want := refalgo.BFSLevels(adj, 0)
	levels, err := BFSLevels(a, 0)
	if err != nil {
		t.Fatalf("BFSLevels under governor: %v", err)
	}
	faults.SetAllocBudget(0)
	if faults.InjectedCount() == base {
		t.Fatal("governor never denied the pinned hypersparse conversion")
	}
	idx, val, err := levels.ExtractTuples()
	if err != nil {
		t.Fatalf("ExtractTuples: %v", err)
	}
	got := make([]int, g.N)
	for i := range got {
		got[i] = -1
	}
	for k := range idx {
		got[idx[k]] = int(val[k])
	}
	for v := 0; v < g.N; v++ {
		if got[v] != want[v] {
			t.Errorf("level[%d]: got %d want %d", v, got[v], want[v])
		}
	}
}

package algorithms

import (
	"math"
	"math/rand"
	"testing"

	"graphblas/internal/core"
	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
	"graphblas/internal/stream"
)

// mutateGraph applies nUpdates random edge inserts and deletes to an RMAT
// graph, recording them in a batch and in an edge-map model; it returns the
// batch and the updated graph rebuilt from the model (deterministic edge
// order) for the refalgo oracle.
func mutateGraph(g *generate.Graph, nUpdates int, seed int64) (*stream.Batch[float64], *generate.Graph) {
	rng := rand.New(rand.NewSource(seed))
	edges := map[[2]int]float64{}
	for _, e := range g.Edges {
		edges[[2]int{e.Src, e.Dst}] = e.Weight
	}
	b := stream.NewBatch[float64]()
	for k := 0; k < nUpdates; k++ {
		if rng.Float64() < 0.25 && len(g.Edges) > 0 {
			e := g.Edges[rng.Intn(len(g.Edges))]
			b.Delete(e.Src, e.Dst)
			delete(edges, [2]int{e.Src, e.Dst})
		} else {
			i, j := rng.Intn(g.N), rng.Intn(g.N)
			if i == j {
				j = (j + 1) % g.N
			}
			b.Insert(i, j, 1)
			edges[[2]int{i, j}] = 1
		}
	}
	upd := &generate.Graph{N: g.N}
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			if w, ok := edges[[2]int{i, j}]; ok {
				upd.Edges = append(upd.Edges, generate.Edge{Src: i, Dst: j, Weight: w})
			}
		}
	}
	return b, upd
}

// TestPageRankIncremental_AgainstOracle: stream a small batch of updates
// into a converged graph's adjacency, then warm-start PageRank from the
// previous rank vector. The result must match a from-scratch refalgo power
// iteration on the updated graph, in (far) fewer sweeps than a cold start.
func TestPageRankIncremental_AgainstOracle(t *testing.T) {
	g := generate.RMAT(8, 8, 4242).Dedup(true)
	a := floatMatrix(t, g)
	r0, _, err := PageRank(a, 0.85, 1e-10, 200)
	if err != nil {
		t.Fatalf("base PageRank: %v", err)
	}

	batch, updated := mutateGraph(g, 12, 7)
	if err := a.ApplyUpdateBatch(batch); err != nil {
		t.Fatalf("ApplyUpdateBatch: %v", err)
	}

	want, _ := refalgo.PageRank(refalgo.NewAdjacency(updated), 0.85, 1e-10, 200)
	rank, warmIters, err := PageRankFrom(a, r0, 0.85, 1e-10, 200)
	if err != nil {
		t.Fatalf("PageRankFrom: %v", err)
	}
	_, coldIters, err := PageRank(a, 0.85, 1e-10, 200)
	if err != nil {
		t.Fatalf("cold PageRank: %v", err)
	}

	idx, val, _ := rank.ExtractTuples()
	got := make([]float64, g.N)
	for k := range idx {
		got[idx[k]] = val[k]
	}
	for v := 0; v < g.N; v++ {
		if math.Abs(got[v]-want[v]) > 1e-6 {
			t.Errorf("rank[%d]: got %v want %v", v, got[v], want[v])
		}
	}
	if warmIters >= coldIters {
		t.Errorf("warm start took %d sweeps, cold %d — incremental restart must converge faster", warmIters, coldIters)
	}
	t.Logf("sweeps: warm %d vs cold %d", warmIters, coldIters)
}

// TestStreamedEqualsRebuild_Algorithms: the acceptance-level differential —
// a graph ingested as streamed batches (absorbed, merged on policy) must be
// byte-identical to a from-scratch rebuild: same tuples, bit-equal PageRank,
// identical connected-components labelling.
func TestStreamedEqualsRebuild_Algorithms(t *testing.T) {
	base := generate.RMAT(8, 8, 99).Dedup(true)
	streamed := floatMatrix(t, base)
	if _, err := streamed.SetMergePolicy(stream.Policy{MaxDeltaNNZ: 40, MaxBatches: 5}); err != nil {
		t.Fatal(err)
	}

	// Stream 16 batches of updates; keep the edge model current.
	cur := base
	rng := rand.New(rand.NewSource(555))
	for round := 0; round < 16; round++ {
		batch, next := mutateGraph(cur, 20, rng.Int63())
		if err := streamed.ApplyUpdateBatch(batch); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	if err := core.Wait(); err != nil {
		t.Fatal(err)
	}

	rebuilt := floatMatrix(t, cur)

	si, sj, sv, err := streamed.ExtractTuples()
	if err != nil {
		t.Fatal(err)
	}
	ri, rj, rv, err := rebuilt.ExtractTuples()
	if err != nil {
		t.Fatal(err)
	}
	if len(si) != len(ri) {
		t.Fatalf("nnz: streamed %d, rebuilt %d", len(si), len(ri))
	}
	for k := range si {
		if si[k] != ri[k] || sj[k] != rj[k] || sv[k] != rv[k] {
			t.Fatalf("tuple %d differs: (%d,%d,%v) vs (%d,%d,%v)", k, si[k], sj[k], sv[k], ri[k], rj[k], rv[k])
		}
	}

	// Bit-equal PageRank: same algorithm over byte-identical inputs.
	pr1, it1, err := PageRank(streamed, 0.85, 1e-9, 100)
	if err != nil {
		t.Fatal(err)
	}
	pr2, it2, err := PageRank(rebuilt, 0.85, 1e-9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if it1 != it2 {
		t.Fatalf("PageRank sweeps differ: %d vs %d", it1, it2)
	}
	i1, v1, _ := pr1.ExtractTuples()
	i2, v2, _ := pr2.ExtractTuples()
	if len(i1) != len(i2) {
		t.Fatalf("PageRank nvals differ: %d vs %d", len(i1), len(i2))
	}
	for k := range i1 {
		if i1[k] != i2[k] || v1[k] != v2[k] {
			t.Fatalf("PageRank[%d]: (%d,%v) vs (%d,%v) — must be bit-equal", k, i1[k], v1[k], i2[k], v2[k])
		}
	}

	// Identical connected components on the merged edge set.
	want := refalgo.ConnectedComponents(cur)
	gGot := &generate.Graph{N: cur.N}
	for k := range si {
		gGot.Edges = append(gGot.Edges, generate.Edge{Src: si[k], Dst: sj[k], Weight: sv[k]})
	}
	got := refalgo.ConnectedComponents(gGot)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("CC label[%d]: %d vs %d", v, got[v], want[v])
		}
	}
}

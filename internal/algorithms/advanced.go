package algorithms

import (
	"graphblas/internal/builtins"
	"graphblas/internal/core"
)

// BFSLevelsDO is direction-optimizing BFS (Beamer-style): it expands small
// frontiers with the push kernel (vxm over the frontier's out-edges) and
// large frontiers with the pull kernel (mxv dot products over unvisited
// rows of Aᵀ, where the complemented mask lets the kernel skip visited rows
// entirely). The two directions are the sparse.PushMxV / sparse.DotMxV
// kernels the BenchmarkAblation_MxVDensity ablation measures in isolation.
//
// Results are identical to BFSLevels; only the traversal schedule differs.
func BFSLevelsDO(a *core.Matrix[bool], source int) (*core.Vector[int32], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	// Pull needs in-edges: materialize Aᵀ once.
	at, err := core.NewMatrix[bool](n, n)
	if err != nil {
		return nil, err
	}
	if err := core.Transpose(at, core.NoMask, core.NoAccum[bool](), a, nil); err != nil {
		return nil, err
	}
	levels, err := core.NewVector[int32](n)
	if err != nil {
		return nil, err
	}
	frontier, err := core.NewVector[bool](n)
	if err != nil {
		return nil, err
	}
	if err := frontier.SetElement(true, source); err != nil {
		return nil, err
	}
	lorLand := builtins.LorLand()
	descRC := core.Desc().ReplaceOutput().CompMask()
	// Switch to pull when the frontier exceeds this share of the vertices
	// (Beamer's α-heuristic, simplified to a fixed density threshold).
	pullThreshold := n / 16
	if pullThreshold < 1 {
		pullThreshold = 1
	}
	for depth := int32(0); ; depth++ {
		nf, err := frontier.NVals()
		if err != nil {
			return nil, err
		}
		if nf == 0 {
			break
		}
		if err := core.AssignVectorScalar(levels, frontier, core.NoAccum[int32](), depth, core.All, nil); err != nil {
			return nil, err
		}
		if nf > pullThreshold {
			// Pull: frontier<!levels> = Aᵀ ∨.∧ frontier via the dot kernel
			// (mask-skipped rows make this cheap near saturation).
			if err := core.MxV(frontier, levels, core.NoAccum[bool](), lorLand, at, frontier, descRC); err != nil {
				return nil, err
			}
		} else {
			// Push: frontier<!levels> = frontier ∨.∧ A.
			if err := core.VxM(frontier, levels, core.NoAccum[bool](), lorLand, frontier, a, descRC); err != nil {
				return nil, err
			}
		}
	}
	return levels, nil
}

// Jaccard computes the Jaccard similarity of every *adjacent* pair of
// vertices in a symmetric simple graph:
//
//	J(i,j) = |N(i) ∩ N(j)| / |N(i) ∪ N(j)|
//	       = common(i,j) / (deg(i) + deg(j) - common(i,j))
//
// The common-neighbor counts come from one masked multiply C⟨A⟩ = A +.× A
// (the Figure 2 idiom keeps the result confined to the edge set instead of
// materializing the dense similarity matrix); degrees come from a row
// reduce; the final combination is element-wise arithmetic. Adjacent pairs
// with no common neighbors get no stored entry (their similarity would be
// 2/(deg(i)+deg(j)) ≠ 0 only through the shared edge itself, which the
// standard neighborhood definition excludes).
func Jaccard(a *core.Matrix[bool]) (*core.Matrix[float64], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	ones, err := core.NewMatrix[float64](n, n)
	if err != nil {
		return nil, err
	}
	if err := core.ApplyM(ones, core.NoMask, core.NoAccum[float64](), builtins.CastBoolTo[float64](), a, nil); err != nil {
		return nil, err
	}
	// common⟨A⟩ = A +.× A.
	common, err := core.NewMatrix[float64](n, n)
	if err != nil {
		return nil, err
	}
	if err := core.MxM(common, a, core.NoAccum[float64](), builtins.PlusTimes[float64](), ones, ones, core.Desc().ReplaceOutput()); err != nil {
		return nil, err
	}
	// deg(i) + deg(j) on the stored pairs: build D = diag(deg), then
	// degSum⟨common⟩ = D +.× |A| + |A| +.× D … simpler with an index-aware
	// apply: each stored (i, j) looks up deg[i] + deg[j] captured densely.
	deg, err := core.NewVector[float64](n)
	if err != nil {
		return nil, err
	}
	if err := core.ReduceMatrixToVector(deg, core.NoMaskV, core.NoAccum[float64](), builtins.PlusMonoid[float64](), ones, nil); err != nil {
		return nil, err
	}
	degIdx, degVal, err := deg.ExtractTuples()
	if err != nil {
		return nil, err
	}
	dense := make([]float64, n)
	for k := range degIdx {
		dense[degIdx[k]] = degVal[k]
	}
	jacc := core.IndexUnaryOp[float64, float64]{Name: "jaccard", F: func(c float64, i, j int) float64 {
		return c / (dense[i] + dense[j] - c)
	}}
	out, err := core.NewMatrix[float64](n, n)
	if err != nil {
		return nil, err
	}
	if err := core.ApplyIndexOpM(out, core.NoMask, core.NoAccum[float64](), jacc, common, nil); err != nil {
		return nil, err
	}
	return out, nil
}

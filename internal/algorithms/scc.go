package algorithms

import (
	"graphblas/internal/builtins"
	"graphblas/internal/core"
)

// SCC labels the strongly connected components of a directed graph by the
// forward-backward-trim method expressed in GraphBLAS primitives: the trim
// phase peels vertices with no unassigned in- or out-neighbors (which are
// necessarily singleton components — the overwhelming majority in skewed
// digraphs); the FW-BW phase then repeatedly picks the smallest unassigned
// vertex as pivot, computes its forward and backward reachable sets within
// the unassigned region (masked BFS over A and Aᵀ), and labels their
// intersection. Each component's label is its smallest member (processing
// pivots in increasing order guarantees the pivot is that minimum; trimmed
// singletons are their own minimum).
func SCC(a *core.Matrix[bool]) (*core.Vector[int64], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	at, err := core.NewMatrix[bool](n, n)
	if err != nil {
		return nil, err
	}
	if err := core.Transpose(at, core.NoMask, core.NoAccum[bool](), a, nil); err != nil {
		return nil, err
	}
	labels, err := core.NewVector[int64](n)
	if err != nil {
		return nil, err
	}
	unassigned, err := core.NewVector[bool](n)
	if err != nil {
		return nil, err
	}
	if err := core.AssignVectorScalar(unassigned, core.NoMaskV, core.NoAccum[bool](), true, core.All, nil); err != nil {
		return nil, err
	}
	compReplace := core.Desc().CompMask().ReplaceOutput()
	replace := core.Desc().ReplaceOutput()

	// ids(i) = i, used to label trimmed singletons in bulk.
	ids, err := core.NewVector[int64](n)
	if err != nil {
		return nil, err
	}
	if err := core.AssignVectorScalar(ids, core.NoMaskV, core.NoAccum[int64](), 0, core.All, nil); err != nil {
		return nil, err
	}
	rowid := core.IndexUnaryOp[int64, int64]{Name: "rowid", F: func(_ int64, i, _ int) int64 { return int64(i) }}
	if err := core.ApplyIndexOpV(ids, core.NoMaskV, core.NoAccum[int64](), rowid, ids, nil); err != nil {
		return nil, err
	}
	carryTrue := core.BinaryOp[bool, bool, bool]{Name: "and", F: func(x, y bool) bool { return x && y }}
	lorCarry, err := core.NewSemiring(builtins.LOrMonoid(), carryTrue)
	if err != nil {
		return nil, err
	}

	// trim peels singleton components until a fixed point.
	trim := func() error {
		for {
			// outAlive(i): i has an unassigned out-neighbor (restricted to
			// unassigned rows by the mask). The frontier is the unassigned
			// indicator itself.
			outAlive, err := core.NewVector[bool](n)
			if err != nil {
				return err
			}
			if err := core.MxV(outAlive, unassigned, core.NoAccum[bool](), lorCarry, a, unassigned, replace); err != nil {
				return err
			}
			inAlive, err := core.NewVector[bool](n)
			if err != nil {
				return err
			}
			if err := core.MxV(inAlive, unassigned, core.NoAccum[bool](), lorCarry, at, unassigned, replace); err != nil {
				return err
			}
			// Vertices alive in both directions can be in nontrivial SCCs.
			both, err := core.NewVector[bool](n)
			if err != nil {
				return err
			}
			if err := core.EWiseMultV(both, core.NoMaskV, core.NoAccum[bool](), carryTrue, outAlive, inAlive, nil); err != nil {
				return err
			}
			// singles = unassigned \ both.
			singles, err := core.NewVector[bool](n)
			if err != nil {
				return err
			}
			if err := core.ApplyV(singles, both, core.NoAccum[bool](), builtins.Identity[bool](), unassigned, compReplace); err != nil {
				return err
			}
			ns, err := singles.NVals()
			if err != nil {
				return err
			}
			if ns == 0 {
				return nil
			}
			// labels<singles> = own ids; unassigned -= singles.
			if err := core.AssignVector(labels, singles, core.NoAccum[int64](), ids, core.All, nil); err != nil {
				return err
			}
			keep, err := unassigned.Dup()
			if err != nil {
				return err
			}
			if err := core.ApplyV(unassigned, singles, core.NoAccum[bool](), builtins.Identity[bool](), keep, compReplace); err != nil {
				return err
			}
		}
	}
	for {
		if err := trim(); err != nil {
			return nil, err
		}
		// Pivot: the smallest unassigned vertex.
		uIdx, _, err := unassigned.ExtractTuples()
		if err != nil {
			return nil, err
		}
		if len(uIdx) == 0 {
			break
		}
		pivot := uIdx[0]
		fwd, err := reachableWithin(a, pivot, unassigned)
		if err != nil {
			return nil, err
		}
		bwd, err := reachableWithin(at, pivot, unassigned)
		if err != nil {
			return nil, err
		}
		// scc = fwd ∧ bwd (always contains the pivot).
		scc, err := core.NewVector[bool](n)
		if err != nil {
			return nil, err
		}
		if err := core.EWiseMultV(scc, core.NoMaskV, core.NoAccum[bool](), builtins.LAnd(), fwd, bwd, nil); err != nil {
			return nil, err
		}
		// labels<scc> = pivot.
		if err := core.AssignVectorScalar(labels, scc, core.NoAccum[int64](), int64(pivot), core.All, nil); err != nil {
			return nil, err
		}
		// unassigned -= scc.
		keep, err := unassigned.Dup()
		if err != nil {
			return nil, err
		}
		if err := core.ApplyV(unassigned, scc, core.NoAccum[bool](), builtins.Identity[bool](), keep, compReplace); err != nil {
			return nil, err
		}
	}
	return labels, nil
}

// reachableWithin computes the set of vertices reachable from pivot in the
// subgraph induced by the allowed set (which must contain the pivot), as a
// boolean vector with all-true values.
func reachableWithin(a *core.Matrix[bool], pivot int, allowed *core.Vector[bool]) (*core.Vector[bool], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	reach, err := core.NewVector[bool](n)
	if err != nil {
		return nil, err
	}
	if err := reach.SetElement(true, pivot); err != nil {
		return nil, err
	}
	frontier, err := reach.Dup()
	if err != nil {
		return nil, err
	}
	lorLand := builtins.LorLand()
	compReplace := core.Desc().CompMask().ReplaceOutput()
	replace := core.Desc().ReplaceOutput()
	for {
		// frontier<!reach> = frontier ∨.∧ A.
		if err := core.VxM(frontier, reach, core.NoAccum[bool](), lorLand, frontier, a, compReplace); err != nil {
			return nil, err
		}
		// Restrict to the allowed region.
		if err := core.EWiseMultV(frontier, core.NoMaskV, core.NoAccum[bool](), builtins.LAnd(), frontier, allowed, replace); err != nil {
			return nil, err
		}
		nv, err := frontier.NVals()
		if err != nil {
			return nil, err
		}
		if nv == 0 {
			return reach, nil
		}
		// reach ∨= frontier.
		if err := core.AssignVectorScalar(reach, frontier, core.NoAccum[bool](), true, core.All, nil); err != nil {
			return nil, err
		}
	}
}

// APSP computes all-pairs shortest-path distances over the min-plus
// semiring by repeated squaring of the distance matrix: D₁ = A min I·0,
// D₂ₖ = Dₖ min.+ Dₖ, converging in ⌈log₂ n⌉ rounds. The result stores an
// entry for every ordered reachable pair (including the zero diagonal);
// dense outputs cost Θ(n²) memory, so this is a small-graph algorithm by
// design — exactly how the semiring textbooks present it.
func APSP(a *core.Matrix[float64]) (*core.Matrix[float64], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	d, err := a.Dup()
	if err != nil {
		return nil, err
	}
	// Zero diagonal: d(i,i) = 0 (paths of length 0), overwriting any
	// self-loop weights, which cannot improve a shortest path when
	// nonnegative.
	zeros, err := core.NewVector[float64](n)
	if err != nil {
		return nil, err
	}
	if err := core.AssignVectorScalar(zeros, core.NoMaskV, core.NoAccum[float64](), 0, core.All, nil); err != nil {
		return nil, err
	}
	diag, err := core.Diag(zeros, 0)
	if err != nil {
		return nil, err
	}
	if err := core.EWiseAddM(d, core.NoMask, core.NoAccum[float64](), builtins.Min[float64](), d, diag, nil); err != nil {
		return nil, err
	}
	minPlus := builtins.MinPlus[float64]()
	minOp := builtins.Min[float64]()
	for span := 1; span < n; span *= 2 {
		// d ⊙min= d min.+ d.
		if err := core.MxM(d, core.NoMask, minOp, minPlus, d, d, nil); err != nil {
			return nil, err
		}
	}
	return d, nil
}

package algorithms

import (
	"graphblas/internal/builtins"
	"graphblas/internal/core"
)

// TriangleCount counts the triangles of an undirected simple graph given as
// a symmetric boolean adjacency matrix with no self-loops, using the
// masked-multiply formulation (Sandia variant): with L the strictly lower
// triangle, every triangle i>j>k is counted exactly once by
//
//	C⟨L⟩ = L +.∧ Lᵀ ;  count = Σ C.
//
// The write mask confining the product to L's structure is the same pruning
// idiom the paper's BC example builds on — the kernel never materializes
// the full wedge count matrix.
func TriangleCount(a *core.Matrix[bool]) (int64, error) {
	n, err := a.NRows()
	if err != nil {
		return 0, err
	}
	// Lift pattern to int64 ones so the + monoid counts wedges.
	ones, err := core.NewMatrix[int64](n, n)
	if err != nil {
		return 0, err
	}
	lift := builtins.CastBoolTo[int64]()
	if err := core.ApplyM(ones, core.NoMask, core.NoAccum[int64](), lift, a, nil); err != nil {
		return 0, err
	}
	tril := core.IndexUnaryOp[int64, bool]{Name: "tril", F: func(_ int64, i, j int) bool { return j < i }}
	l, err := core.NewMatrix[int64](n, n)
	if err != nil {
		return 0, err
	}
	if err := core.SelectM(l, core.NoMask, core.NoAccum[int64](), tril, ones, nil); err != nil {
		return 0, err
	}
	c, err := core.NewMatrix[int64](n, n)
	if err != nil {
		return 0, err
	}
	// C⟨L⟩ = L +.× Lᵀ : wedges i–k, j–k with k < j < i, closed by the mask
	// requiring edge (i, j).
	if err := core.MxM(c, l, core.NoAccum[int64](), builtins.PlusTimes[int64](), l, l, core.Desc().Transpose1().ReplaceOutput()); err != nil {
		return 0, err
	}
	return core.ReduceMatrixToScalar(0, core.NoAccum[int64](), builtins.PlusMonoid[int64](), c)
}

// ConnectedComponents labels the weakly connected components of a symmetric
// boolean adjacency matrix by min-label propagation over the ⟨min, second⟩
// semiring: every vertex starts with its own id and repeatedly takes the
// minimum of its neighbors' labels until a fixed point. The returned label
// of each component is its smallest vertex id.
func ConnectedComponents(a *core.Matrix[bool]) (*core.Vector[int64], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	labels, err := core.NewVector[int64](n)
	if err != nil {
		return nil, err
	}
	ownID := core.IndexUnaryOp[int64, int64]{Name: "rowid", F: func(_ int64, i, _ int) int64 { return int64(i) }}
	if err := core.AssignVectorScalar(labels, core.NoMaskV, core.NoAccum[int64](), 0, core.All, nil); err != nil {
		return nil, err
	}
	if err := core.ApplyIndexOpV(labels, core.NoMaskV, core.NoAccum[int64](), ownID, labels, nil); err != nil {
		return nil, err
	}
	// l' = min(l, l min.second A): ⊗(l_k, A(k,j)) must produce l_k, so use
	// the mixed-domain second-flipped operator ⊗(l, edge) = l.
	carry := core.BinaryOp[int64, bool, int64]{Name: "carry", F: func(l int64, _ bool) int64 { return l }}
	minCarry, err := core.NewSemiring(builtins.MinMonoid[int64](), carry)
	if err != nil {
		return nil, err
	}
	minOp := builtins.Min[int64]()
	for iter := 0; iter < n; iter++ {
		before, beforeVals, err := labels.ExtractTuples()
		if err != nil {
			return nil, err
		}
		if err := core.VxM(labels, core.NoMaskV, minOp, minCarry, labels, a, nil); err != nil {
			return nil, err
		}
		after, afterVals, err := labels.ExtractTuples()
		if err != nil {
			return nil, err
		}
		if equalTuplesI64(before, beforeVals, after, afterVals) {
			break
		}
	}
	return labels, nil
}

func equalTuplesI64(ai []int, av []int64, bi []int, bv []int64) bool {
	if len(ai) != len(bi) {
		return false
	}
	for k := range ai {
		if ai[k] != bi[k] || av[k] != bv[k] {
			return false
		}
	}
	return true
}

// MIS computes a maximal independent set of a symmetric simple graph by
// Luby's randomized algorithm expressed in GraphBLAS primitives: each
// candidate draws a random score; vertices whose score beats every
// neighbor's join the set; their neighbors leave the candidate pool. The
// result is the boolean membership vector. seed makes runs reproducible.
func MIS(a *core.Matrix[bool], seed uint64) (*core.Vector[bool], error) {
	n, err := a.NRows()
	if err != nil {
		return nil, err
	}
	inSet, err := core.NewVector[bool](n)
	if err != nil {
		return nil, err
	}
	// candidates: initially everyone.
	cand, err := core.NewVector[bool](n)
	if err != nil {
		return nil, err
	}
	if err := core.AssignVectorScalar(cand, core.NoMaskV, core.NoAccum[bool](), true, core.All, nil); err != nil {
		return nil, err
	}
	// Degree (for tie-breaking randomness weighting, and to admit isolated
	// vertices immediately).
	maxMonoid := builtins.MaxMonoid[float64]()
	state := seed | 1
	nextRand := func(i int) float64 {
		// splitmix-style hash of (state, i) for a stable per-round score.
		x := state + uint64(i)*0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
		return float64(x>>11) / (1 << 53)
	}
	for round := 0; round < 10*n+10; round++ {
		ncand, err := cand.NVals()
		if err != nil {
			return nil, err
		}
		if ncand == 0 {
			break
		}
		state = state*6364136223846793005 + 1442695040888963407
		// score: random value per candidate.
		score, err := core.NewVector[float64](n)
		if err != nil {
			return nil, err
		}
		draw := core.IndexUnaryOp[bool, float64]{Name: "rand", F: func(_ bool, i, _ int) float64 { return 1e-9 + nextRand(i) }}
		if err := core.ApplyIndexOpV(score, cand, core.NoAccum[float64](), draw, cand, core.Desc().ReplaceOutput()); err != nil {
			return nil, err
		}
		// neighborMax<cand> = score max.second A  (max over in-neighbors;
		// symmetric graph makes this the neighborhood max).
		carry := core.BinaryOp[float64, bool, float64]{Name: "carry", F: func(s float64, _ bool) float64 { return s }}
		maxCarry, err := core.NewSemiring(maxMonoid, carry)
		if err != nil {
			return nil, err
		}
		nbrMax, err := core.NewVector[float64](n)
		if err != nil {
			return nil, err
		}
		if err := core.VxM(nbrMax, cand, core.NoAccum[float64](), maxCarry, score, a, core.Desc().ReplaceOutput()); err != nil {
			return nil, err
		}
		// winners: candidates whose score > neighborhood max (vertices with
		// no candidate neighbor win by default — eWiseAdd keeps their score,
		// and the comparison against the absent max is handled by giving
		// absent maxima -∞ via the union with 0-weighted... simpler: winners
		// = score entries where nbrMax has no entry or score > nbrMax).
		winners, err := core.NewVector[bool](n)
		if err != nil {
			return nil, err
		}
		gt := builtins.Gt[float64]()
		// both present: score > nbrMax.
		if err := core.EWiseMultV(winners, core.NoMaskV, core.NoAccum[bool](), gt, score, nbrMax, nil); err != nil {
			return nil, err
		}
		// candidates with no neighbor max at all are automatic winners:
		// winners<!nbrMax> += true over score's structure.
		toTrue := core.UnaryOp[float64, bool]{Name: "true", F: func(float64) bool { return true }}
		if err := core.ApplyV(winners, nbrMax, core.NoAccum[bool](), toTrue, score, core.Desc().CompMask()); err != nil {
			return nil, err
		}
		// Keep only true winners as structure.
		isTrue := core.IndexUnaryOp[bool, bool]{Name: "istrue", F: func(v bool, _, _ int) bool { return v }}
		if err := core.SelectV(winners, core.NoMaskV, core.NoAccum[bool](), isTrue, winners, core.Desc().ReplaceOutput()); err != nil {
			return nil, err
		}
		wn, err := winners.NVals()
		if err != nil {
			return nil, err
		}
		if wn == 0 {
			continue // rare all-tie round; redraw
		}
		// inSet<winners> = true.
		if err := core.AssignVectorScalar(inSet, winners, core.NoAccum[bool](), true, core.All, nil); err != nil {
			return nil, err
		}
		// neighbors of winners leave the pool: nbr = winners ∨.∧ A.
		nbr, err := core.NewVector[bool](n)
		if err != nil {
			return nil, err
		}
		if err := core.VxM(nbr, core.NoMaskV, core.NoAccum[bool](), builtins.LorLand(), winners, a, nil); err != nil {
			return nil, err
		}
		// cand = cand minus winners minus their neighbors: keep cand entries
		// outside both structures.
		keep, err := cand.Dup()
		if err != nil {
			return nil, err
		}
		if err := core.ApplyV(cand, winners, core.NoAccum[bool](), builtins.Identity[bool](), keep, core.Desc().CompMask().ReplaceOutput()); err != nil {
			return nil, err
		}
		keep2, err := cand.Dup()
		if err != nil {
			return nil, err
		}
		if err := core.ApplyV(cand, nbr, core.NoAccum[bool](), builtins.Identity[bool](), keep2, core.Desc().CompMask().ReplaceOutput()); err != nil {
			return nil, err
		}
	}
	return inSet, nil
}

// GreedyColor computes a proper vertex coloring of a symmetric simple graph
// by the Jones–Plassmann-style repeated-MIS schedule: each round finds a
// maximal independent set of the still-uncolored subgraph and assigns it
// the next color. Returns the color of every vertex (0-based) and the
// number of colors used.
func GreedyColor(a *core.Matrix[bool], seed uint64) (*core.Vector[int64], int, error) {
	n, err := a.NRows()
	if err != nil {
		return nil, 0, err
	}
	colors, err := core.NewVector[int64](n)
	if err != nil {
		return nil, 0, err
	}
	// remaining: uncolored vertices.
	remaining, err := core.NewVector[bool](n)
	if err != nil {
		return nil, 0, err
	}
	if err := core.AssignVectorScalar(remaining, core.NoMaskV, core.NoAccum[bool](), true, core.All, nil); err != nil {
		return nil, 0, err
	}
	// Work on a shrinking copy of the adjacency: after each round the
	// colored vertices' edges are removed by masking rows and columns.
	work, err := a.Dup()
	if err != nil {
		return nil, 0, err
	}
	compReplace := core.Desc().CompMask().ReplaceOutput()
	color := int64(0)
	for ; ; color++ {
		nr, err := remaining.NVals()
		if err != nil {
			return nil, 0, err
		}
		if nr == 0 {
			break
		}
		set, err := MIS(work, seed+uint64(color)*7919)
		if err != nil {
			return nil, 0, err
		}
		// Restrict the MIS to still-uncolored vertices (the masked rows of
		// work may retain isolated colored vertices as trivial members).
		chosen, err := core.NewVector[bool](n)
		if err != nil {
			return nil, 0, err
		}
		if err := core.EWiseMultV(chosen, core.NoMaskV, core.NoAccum[bool](), builtins.LAnd(), set, remaining, nil); err != nil {
			return nil, 0, err
		}
		nc, err := chosen.NVals()
		if err != nil {
			return nil, 0, err
		}
		if nc == 0 {
			// Can only happen if remaining is nonempty but MIS returned
			// nothing new — guard against livelock by coloring one vertex.
			idx, _, err := remaining.ExtractTuples()
			if err != nil {
				return nil, 0, err
			}
			if err := chosen.SetElement(true, idx[0]); err != nil {
				return nil, 0, err
			}
		}
		// colors<chosen> = color.
		if err := core.AssignVectorScalar(colors, chosen, core.NoAccum[int64](), color, core.All, nil); err != nil {
			return nil, 0, err
		}
		// remaining -= chosen.
		keep, err := remaining.Dup()
		if err != nil {
			return nil, 0, err
		}
		if err := core.ApplyV(remaining, chosen, core.NoAccum[bool](), builtins.Identity[bool](), keep, compReplace); err != nil {
			return nil, 0, err
		}
		// Remove colored vertices from the working graph: keep only
		// remaining×remaining entries.
		pruned, err := core.NewMatrix[bool](n, n)
		if err != nil {
			return nil, 0, err
		}
		remIdx, _, err := remaining.ExtractTuples()
		if err != nil {
			return nil, 0, err
		}
		if len(remIdx) == 0 {
			color++
			break
		}
		keepEdge := core.IndexUnaryOp[bool, bool]{Name: "keep", F: func(_ bool, i, j int) bool {
			return inSorted(remIdx, i) && inSorted(remIdx, j)
		}}
		wd, err := work.Dup()
		if err != nil {
			return nil, 0, err
		}
		if err := core.SelectM(pruned, core.NoMask, core.NoAccum[bool](), keepEdge, wd, nil); err != nil {
			return nil, 0, err
		}
		work = pruned
	}
	return colors, int(color), nil
}

// inSorted reports membership of x in a sorted slice.
func inSorted(xs []int, x int) bool {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(xs) && xs[lo] == x
}

package algorithms

import (
	"math"
	"testing"

	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
)

func TestSCC_AgainstTarjan(t *testing.T) {
	graphs := map[string]*generate.Graph{
		"two cycles bridged": {N: 7, Edges: []generate.Edge{
			{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}, {Src: 2, Dst: 0, Weight: 1},
			{Src: 2, Dst: 3, Weight: 1}, // bridge (one-way)
			{Src: 3, Dst: 4, Weight: 1}, {Src: 4, Dst: 5, Weight: 1}, {Src: 5, Dst: 3, Weight: 1},
			// 6 isolated
		}},
		"path (all singleton)": generate.Path(12),
		"cycle (one big)":      generate.Cycle(12),
		"er150":                generate.ErdosRenyiGnm(150, 450, 17),
		"rmat8":                generate.RMAT(8, 4, 21).Dedup(true),
		"er dense":             generate.ErdosRenyiGnp(60, 0.08, 23),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			want := refalgo.TarjanSCC(refalgo.NewAdjacency(g))
			a := boolMatrix(t, g)
			labels, err := SCC(a)
			if err != nil {
				t.Fatalf("SCC: %v", err)
			}
			idx, val, _ := labels.ExtractTuples()
			if len(idx) != g.N {
				t.Fatalf("labels incomplete: %d of %d", len(idx), g.N)
			}
			got := make([]int, g.N)
			for k := range idx {
				got[idx[k]] = int(val[k])
			}
			for v := 0; v < g.N; v++ {
				if got[v] != want[v] {
					t.Errorf("scc[%d]: got %d want %d", v, got[v], want[v])
				}
			}
		})
	}
}

func TestAPSP_AgainstDijkstraAllSources(t *testing.T) {
	graphs := map[string]*generate.Graph{
		"diamond": {N: 4, Edges: []generate.Edge{
			{Src: 0, Dst: 1, Weight: 5}, {Src: 0, Dst: 2, Weight: 1},
			{Src: 2, Dst: 1, Weight: 1}, {Src: 1, Dst: 3, Weight: 1},
		}},
		"er80":   generate.ErdosRenyiGnm(80, 400, 29),
		"grid":   generate.Grid2D(6, 6),
		"cycle9": generate.Cycle(9),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			adj := refalgo.NewAdjacency(g)
			a := floatMatrix(t, g)
			d, err := APSP(a)
			if err != nil {
				t.Fatalf("APSP: %v", err)
			}
			is, js, vs, _ := d.ExtractTuples()
			got := map[[2]int]float64{}
			for k := range is {
				got[[2]int{is[k], js[k]}] = vs[k]
			}
			for src := 0; src < g.N; src++ {
				want := refalgo.Dijkstra(adj, src)
				for dst := 0; dst < g.N; dst++ {
					gv, ok := got[[2]int{src, dst}]
					if math.IsInf(want[dst], 1) {
						if ok {
							t.Errorf("(%d,%d): spurious distance %v", src, dst, gv)
						}
						continue
					}
					if !ok {
						t.Errorf("(%d,%d): missing distance, want %v", src, dst, want[dst])
						continue
					}
					if math.Abs(gv-want[dst]) > 1e-9 {
						t.Errorf("(%d,%d): got %v want %v", src, dst, gv, want[dst])
					}
				}
			}
		})
	}
}

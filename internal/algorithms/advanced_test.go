package algorithms

import (
	"math"
	"testing"

	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
)

func TestBFSLevelsDO_MatchesBFSLevels(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			adj := refalgo.NewAdjacency(g)
			a := boolMatrix(t, g)
			for _, src := range []int{0, g.N / 3} {
				want := refalgo.BFSLevels(adj, src)
				lv, err := BFSLevelsDO(a, src)
				if err != nil {
					t.Fatalf("BFSLevelsDO: %v", err)
				}
				idx, val, _ := lv.ExtractTuples()
				got := make([]int, g.N)
				for i := range got {
					got[i] = -1
				}
				for k := range idx {
					got[idx[k]] = int(val[k])
				}
				for v := 0; v < g.N; v++ {
					if got[v] != want[v] {
						t.Errorf("src %d level[%d]: got %d want %d", src, v, got[v], want[v])
					}
				}
			}
		})
	}
}

// directJaccard computes the oracle similarities on adjacency lists.
func directJaccard(adj *refalgo.Adjacency) map[[2]int]float64 {
	out := map[[2]int]float64{}
	for i := 0; i < adj.N; i++ {
		ni := adj.Neighbors(i)
		for _, j := range ni {
			nj := adj.Neighbors(j)
			common := 0
			p, q := 0, 0
			for p < len(ni) && q < len(nj) {
				switch {
				case ni[p] < nj[q]:
					p++
				case ni[p] > nj[q]:
					q++
				default:
					common++
					p++
					q++
				}
			}
			if common > 0 {
				out[[2]int{i, j}] = float64(common) / float64(len(ni)+len(nj)-common)
			}
		}
	}
	return out
}

func TestJaccard_AgainstDirect(t *testing.T) {
	for name, g := range symGraphs() {
		t.Run(name, func(t *testing.T) {
			adj := refalgo.NewAdjacency(g)
			want := directJaccard(adj)
			a := boolMatrix(t, g)
			jm, err := Jaccard(a)
			if err != nil {
				t.Fatalf("Jaccard: %v", err)
			}
			is, js, vs, _ := jm.ExtractTuples()
			if len(is) != len(want) {
				t.Fatalf("pair count %d want %d", len(is), len(want))
			}
			for k := range is {
				w, ok := want[[2]int{is[k], js[k]}]
				if !ok {
					t.Fatalf("spurious pair (%d,%d)", is[k], js[k])
				}
				if math.Abs(vs[k]-w) > 1e-12 {
					t.Fatalf("J(%d,%d) got %v want %v", is[k], js[k], vs[k], w)
				}
			}
		})
	}
	// Known value: in K4, every adjacent pair shares the other 2 vertices:
	// J = 2/(3+3-2) = 0.5.
	k4 := generate.Complete(4).Symmetrize().Dedup(true)
	jm, err := Jaccard(boolMatrix(t, k4))
	if err != nil {
		t.Fatal(err)
	}
	_, _, vs, _ := jm.ExtractTuples()
	if len(vs) != 12 {
		t.Fatalf("K4 pairs %d", len(vs))
	}
	for _, v := range vs {
		if v != 0.5 {
			t.Fatalf("K4 jaccard %v", v)
		}
	}
}

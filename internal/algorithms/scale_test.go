package algorithms

import (
	"math"
	"testing"

	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
)

// TestLargeScaleSoak cross-validates the core algorithms at RMAT scale 13
// (8k vertices, ~57k edges) — beyond the unit-test sizes, small enough for
// CI. Skipped under -short.
func TestLargeScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	g := generate.RMAT(13, 8, 99).Dedup(true)
	adj := refalgo.NewAdjacency(g)
	ab := boolMatrix(t, g)
	ai := int32Matrix(t, g)
	af := floatMatrix(t, g)

	t.Run("bfs", func(t *testing.T) {
		want := refalgo.BFSLevels(adj, 0)
		lv, err := BFSLevelsDO(ab, 0)
		if err != nil {
			t.Fatal(err)
		}
		idx, val, _ := lv.ExtractTuples()
		got := make([]int, g.N)
		for i := range got {
			got[i] = -1
		}
		for k := range idx {
			got[idx[k]] = int(val[k])
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("level[%d] %d want %d", v, got[v], want[v])
			}
		}
	})
	t.Run("sssp", func(t *testing.T) {
		want := refalgo.Dijkstra(adj, 0)
		d, err := SSSP(af, 0)
		if err != nil {
			t.Fatal(err)
		}
		idx, val, _ := d.ExtractTuples()
		got := make([]float64, g.N)
		for i := range got {
			got[i] = math.Inf(1)
		}
		for k := range idx {
			got[idx[k]] = val[k]
		}
		for v := range want {
			if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) || (!math.IsInf(want[v], 1) && math.Abs(got[v]-want[v]) > 1e-9) {
				t.Fatalf("dist[%d] %v want %v", v, got[v], want[v])
			}
		}
	})
	t.Run("bc", func(t *testing.T) {
		sources := generate.NewRNG(1).Perm(g.N)[:32]
		want := refalgo.BrandesBC(adj, sources)
		delta, err := BCUpdate(ai, sources)
		if err != nil {
			t.Fatal(err)
		}
		idx, val, _ := delta.ExtractTuples()
		got := make([]float64, g.N)
		for k := range idx {
			got[idx[k]] = float64(val[k])
		}
		for v := range want {
			if math.Abs(got[v]-want[v])/math.Max(1, math.Abs(want[v])) > 1e-3 {
				t.Fatalf("bc[%d] %v want %v", v, got[v], want[v])
			}
		}
	})
	t.Run("pagerank", func(t *testing.T) {
		want, _ := refalgo.PageRank(adj, 0.85, 1e-9, 300)
		r, _, err := PageRank(af, 0.85, 1e-9, 300)
		if err != nil {
			t.Fatal(err)
		}
		idx, val, _ := r.ExtractTuples()
		got := make([]float64, g.N)
		for k := range idx {
			got[idx[k]] = val[k]
		}
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-6 {
				t.Fatalf("rank[%d] %v want %v", v, got[v], want[v])
			}
		}
	})
}

package algorithms

import (
	"math"
	"os"
	"testing"

	"graphblas/internal/builtins"
	"graphblas/internal/core"
	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
)

func TestMain(m *testing.M) {
	core.ResetForTesting()
	if err := core.Init(core.NonBlocking); err != nil {
		panic(err)
	}
	os.Exit(m.Run())
}

// boolMatrix builds a Matrix[bool] adjacency from a graph.
func boolMatrix(t testing.TB, g *generate.Graph) *core.Matrix[bool] {
	t.Helper()
	m, err := core.NewMatrix[bool](g.N, g.N)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	rows, cols, _ := g.Tuples()
	vals := make([]bool, len(rows))
	for i := range vals {
		vals[i] = true
	}
	if err := m.Build(rows, cols, vals, builtins.LOr()); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

// int32Matrix builds the Figure 3 style integer adjacency (stored 1s).
func int32Matrix(t testing.TB, g *generate.Graph) *core.Matrix[int32] {
	t.Helper()
	m, err := core.NewMatrix[int32](g.N, g.N)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	rows, cols, _ := g.Tuples()
	vals := make([]int32, len(rows))
	for i := range vals {
		vals[i] = 1
	}
	if err := m.Build(rows, cols, vals, builtins.First[int32]()); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

// floatMatrix builds a weighted adjacency.
func floatMatrix(t testing.TB, g *generate.Graph) *core.Matrix[float64] {
	t.Helper()
	m, err := core.NewMatrix[float64](g.N, g.N)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	rows, cols, w := g.Tuples()
	if err := m.Build(rows, cols, w, builtins.First[float64]()); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

// testGraphs is the workload battery shared by the cross-validation tests.
func testGraphs() map[string]*generate.Graph {
	return map[string]*generate.Graph{
		"path16":    generate.Path(16),
		"cycle9":    generate.Cycle(9),
		"star12":    generate.Star(12),
		"grid4x5":   generate.Grid2D(4, 5),
		"tree4":     generate.BinaryTree(4),
		"er200":     generate.ErdosRenyiGnm(200, 800, 1).Dedup(true),
		"er50dense": generate.ErdosRenyiGnp(50, 0.15, 2).Dedup(true),
		"rmat8":     generate.RMAT(8, 4, 3).Dedup(true),
	}
}

func TestBC_AgainstBrandes(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			adj := refalgo.NewAdjacency(g)
			a := int32Matrix(t, g)
			sources := []int{0}
			if g.N > 8 {
				sources = []int{0, 3, g.N / 2, g.N - 1}
			}
			want := refalgo.BrandesBC(adj, sources)
			delta, err := BCUpdate(a, sources)
			if err != nil {
				t.Fatalf("BCUpdate: %v", err)
			}
			idx, val, err := delta.ExtractTuples()
			if err != nil {
				t.Fatalf("ExtractTuples: %v", err)
			}
			got := make([]float64, g.N)
			for k := range idx {
				got[idx[k]] = float64(val[k])
			}
			for v := 0; v < g.N; v++ {
				diff := math.Abs(got[v] - want[v])
				scale := math.Max(1, math.Abs(want[v]))
				if diff/scale > 2e-4 {
					t.Errorf("BC[%d]: got %v want %v", v, got[v], want[v])
				}
			}
		})
	}
}

func TestBFSLevels_AgainstQueueBFS(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			adj := refalgo.NewAdjacency(g)
			a := boolMatrix(t, g)
			for _, src := range []int{0, g.N - 1} {
				want := refalgo.BFSLevels(adj, src)
				levels, err := BFSLevels(a, src)
				if err != nil {
					t.Fatalf("BFSLevels: %v", err)
				}
				idx, val, _ := levels.ExtractTuples()
				got := make([]int, g.N)
				for i := range got {
					got[i] = -1
				}
				for k := range idx {
					got[idx[k]] = int(val[k])
				}
				for v := 0; v < g.N; v++ {
					if got[v] != want[v] {
						t.Errorf("src %d level[%d]: got %d want %d", src, v, got[v], want[v])
					}
				}
			}
		})
	}
}

func TestBFSParents_ValidTree(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			adj := refalgo.NewAdjacency(g)
			a := boolMatrix(t, g)
			src := 0
			levels := refalgo.BFSLevels(adj, src)
			parents, err := BFSParents(a, src)
			if err != nil {
				t.Fatalf("BFSParents: %v", err)
			}
			idx, val, _ := parents.ExtractTuples()
			got := make([]int, g.N)
			for i := range got {
				got[i] = -1
			}
			for k := range idx {
				got[idx[k]] = int(val[k])
			}
			for v := 0; v < g.N; v++ {
				if levels[v] < 0 {
					if got[v] != -1 {
						t.Errorf("unreached %d has parent %d", v, got[v])
					}
					continue
				}
				if v == src {
					if got[v] != src {
						t.Errorf("source parent %d", got[v])
					}
					continue
				}
				p := got[v]
				if p < 0 {
					t.Errorf("reached %d has no parent", v)
					continue
				}
				// Parent must be exactly one level above and adjacent.
				if levels[p] != levels[v]-1 {
					t.Errorf("parent %d of %d at level %d, vertex at %d", p, v, levels[p], levels[v])
				}
				found := false
				for _, u := range adj.Neighbors(p) {
					if u == v {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("parent %d not adjacent to %d", p, v)
				}
			}
		})
	}
}

func TestSSSP_AgainstDijkstra(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			adj := refalgo.NewAdjacency(g)
			a := floatMatrix(t, g)
			for _, src := range []int{0, g.N / 2} {
				want := refalgo.Dijkstra(adj, src)
				bf := refalgo.BellmanFord(adj, src)
				for v := range want {
					if math.Abs(want[v]-bf[v]) > 1e-9 && !(math.IsInf(want[v], 1) && math.IsInf(bf[v], 1)) {
						t.Fatalf("baselines disagree at %d: %v vs %v", v, want[v], bf[v])
					}
				}
				dist, err := SSSP(a, src)
				if err != nil {
					t.Fatalf("SSSP: %v", err)
				}
				idx, val, _ := dist.ExtractTuples()
				got := make([]float64, g.N)
				for i := range got {
					got[i] = math.Inf(1)
				}
				for k := range idx {
					got[idx[k]] = val[k]
				}
				for v := 0; v < g.N; v++ {
					if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) {
						t.Errorf("src %d reach[%d]: got %v want %v", src, v, got[v], want[v])
						continue
					}
					if !math.IsInf(want[v], 1) && math.Abs(got[v]-want[v]) > 1e-9 {
						t.Errorf("src %d dist[%d]: got %v want %v", src, v, got[v], want[v])
					}
				}
			}
		})
	}
}

func TestPageRank_AgainstPowerIteration(t *testing.T) {
	for _, name := range []string{"cycle9", "star12", "er200", "rmat8", "path16"} {
		g := testGraphs()[name]
		t.Run(name, func(t *testing.T) {
			adj := refalgo.NewAdjacency(g)
			a := floatMatrix(t, g)
			want, _ := refalgo.PageRank(adj, 0.85, 1e-10, 200)
			rank, _, err := PageRank(a, 0.85, 1e-10, 200)
			if err != nil {
				t.Fatalf("PageRank: %v", err)
			}
			idx, val, _ := rank.ExtractTuples()
			got := make([]float64, g.N)
			for k := range idx {
				got[idx[k]] = val[k]
			}
			sum := 0.0
			for v := 0; v < g.N; v++ {
				sum += got[v]
				if math.Abs(got[v]-want[v]) > 1e-6 {
					t.Errorf("rank[%d]: got %v want %v", v, got[v], want[v])
				}
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Errorf("ranks sum to %v", sum)
			}
		})
	}
}

func TestTriangleCount_AgainstIntersection(t *testing.T) {
	graphs := map[string]*generate.Graph{
		"triangle":  {N: 3, Edges: []generate.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}, {Src: 0, Dst: 2, Weight: 1}}},
		"complete6": generate.Complete(6),
		"grid5x5":   generate.Grid2D(5, 5),
		"er100":     generate.ErdosRenyiGnm(100, 900, 7),
		"rmat7":     generate.RMAT(7, 6, 9),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			g = g.Symmetrize().Dedup(true)
			adj := refalgo.NewAdjacency(g)
			want := refalgo.TriangleCount(adj)
			a := boolMatrix(t, g)
			got, err := TriangleCount(a)
			if err != nil {
				t.Fatalf("TriangleCount: %v", err)
			}
			if got != want {
				t.Errorf("got %d want %d", got, want)
			}
		})
	}
}

func TestConnectedComponents_AgainstUnionFind(t *testing.T) {
	// Disconnected graph: two cliques plus isolated vertices.
	g := &generate.Graph{N: 12}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				g.Edges = append(g.Edges, generate.Edge{Src: i, Dst: j, Weight: 1})
			}
		}
	}
	for i := 5; i < 9; i++ {
		for j := 5; j < 9; j++ {
			if i != j {
				g.Edges = append(g.Edges, generate.Edge{Src: i, Dst: j, Weight: 1})
			}
		}
	}
	g.Edges = append(g.Edges, generate.Edge{Src: 9, Dst: 10, Weight: 1}, generate.Edge{Src: 10, Dst: 9, Weight: 1})
	want := refalgo.ConnectedComponents(g)
	a := boolMatrix(t, g)
	labels, err := ConnectedComponents(a)
	if err != nil {
		t.Fatalf("ConnectedComponents: %v", err)
	}
	idx, val, _ := labels.ExtractTuples()
	got := make([]int, g.N)
	for k := range idx {
		got[idx[k]] = int(val[k])
	}
	if len(idx) != g.N {
		t.Fatalf("labels incomplete: %d of %d", len(idx), g.N)
	}
	for v := 0; v < g.N; v++ {
		if got[v] != want[v] {
			t.Errorf("label[%d]: got %d want %d", v, got[v], want[v])
		}
	}

	// Random symmetric graph.
	rg := generate.ErdosRenyiGnm(150, 200, 11).Symmetrize().Dedup(true)
	want = refalgo.ConnectedComponents(rg)
	ra := boolMatrix(t, rg)
	labels, err = ConnectedComponents(ra)
	if err != nil {
		t.Fatalf("ConnectedComponents: %v", err)
	}
	idx, val, _ = labels.ExtractTuples()
	got = make([]int, rg.N)
	for k := range idx {
		got[idx[k]] = int(val[k])
	}
	for v := 0; v < rg.N; v++ {
		if got[v] != want[v] {
			t.Errorf("random label[%d]: got %d want %d", v, got[v], want[v])
		}
	}
}

func TestMIS_IsMaximalIndependent(t *testing.T) {
	for _, name := range []string{"grid4x5", "er50dense", "star12", "complete"} {
		var g *generate.Graph
		if name == "complete" {
			g = generate.Complete(8)
		} else {
			g = testGraphs()[name]
		}
		t.Run(name, func(t *testing.T) {
			g = g.Symmetrize().Dedup(true)
			adj := refalgo.NewAdjacency(g)
			a := boolMatrix(t, g)
			set, err := MIS(a, 12345)
			if err != nil {
				t.Fatalf("MIS: %v", err)
			}
			idx, val, _ := set.ExtractTuples()
			in := make([]bool, g.N)
			for k := range idx {
				if val[k] {
					in[idx[k]] = true
				}
			}
			// Independence: no edge within the set.
			for _, e := range g.Edges {
				if in[e.Src] && in[e.Dst] {
					t.Fatalf("edge (%d,%d) inside MIS", e.Src, e.Dst)
				}
			}
			// Maximality: every vertex outside has a neighbor inside.
			for v := 0; v < g.N; v++ {
				if in[v] {
					continue
				}
				hasNbrIn := false
				for _, u := range adj.Neighbors(v) {
					if in[u] {
						hasNbrIn = true
						break
					}
				}
				if !hasNbrIn {
					t.Fatalf("vertex %d outside MIS with no neighbor inside", v)
				}
			}
		})
	}
}

func TestReach_PowerSetSemiring(t *testing.T) {
	// Diamond: 0→1, 0→2, 1→3, 2→3; plus isolated 4; source batch {0, 1, 4}.
	g := &generate.Graph{N: 5, Edges: []generate.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 0, Dst: 2, Weight: 1},
		{Src: 1, Dst: 3, Weight: 1}, {Src: 2, Dst: 3, Weight: 1},
	}}
	a := boolMatrix(t, g)
	sources := []int{0, 1, 4}
	labels, err := Reach(a, sources)
	if err != nil {
		t.Fatalf("Reach: %v", err)
	}
	idx, val, _ := labels.ExtractTuples()
	got := map[int][]int{}
	for k := range idx {
		got[idx[k]] = val[k].Members()
	}
	want := map[int][]int{
		0: {0},    // source 0 reaches itself
		1: {0, 1}, // from 0 and source 1 itself
		2: {0},    // only via 0
		3: {0, 1}, // via both branches and from 1
		4: {2},    // source index 2 (vertex 4) reaches itself only
	}
	for v, members := range want {
		g := got[v]
		if len(g) != len(members) {
			t.Fatalf("reach[%d]: got %v want %v", v, g, members)
		}
		for i := range members {
			if g[i] != members[i] {
				t.Fatalf("reach[%d]: got %v want %v", v, g, members)
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestBCAll_AgainstFullBrandes(t *testing.T) {
	for _, name := range []string{"grid4x5", "cycle9", "er50dense"} {
		g := testGraphs()[name]
		t.Run(name, func(t *testing.T) {
			adj := refalgo.NewAdjacency(g)
			all := make([]int, g.N)
			for i := range all {
				all[i] = i
			}
			want := refalgo.BrandesBC(adj, all)
			a := int32Matrix(t, g)
			bc, err := BCAll(a, 7) // deliberately odd batch size
			if err != nil {
				t.Fatalf("BCAll: %v", err)
			}
			idx, val, _ := bc.ExtractTuples()
			got := make([]float64, g.N)
			for k := range idx {
				got[idx[k]] = float64(val[k])
			}
			for v := 0; v < g.N; v++ {
				if math.Abs(got[v]-want[v])/math.Max(1, math.Abs(want[v])) > 1e-3 {
					t.Errorf("bc[%d] got %v want %v", v, got[v], want[v])
				}
			}
		})
	}
}

// Package parallel provides the small shared-memory runtime used by the
// sparse kernels: a bounded parallel-for and load-balanced range
// partitioning. It is deliberately tiny; the point of the GraphBLAS design
// is that opacity of the collection objects lets the implementation
// parallelize internally without changing the API.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the number of goroutines any single parallel-for spawns.
// It defaults to GOMAXPROCS and can be lowered for tests.
var maxWorkers atomic.Int64

func init() {
	maxWorkers.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetMaxWorkers sets the worker bound for subsequent parallel loops and
// returns the previous value. n < 1 is treated as 1.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MaxWorkers reports the current worker bound.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// SetMaxWorkersForTest sets the worker bound for the duration of a test and
// registers a cleanup restoring the previous value, so a test can never
// leak a lowered bound into later tests or packages. The parameter is the
// *testing.T/B/F (any value with a Cleanup method), kept as an interface so
// this package does not import testing.
func SetMaxWorkersForTest(t interface{ Cleanup(func()) }, n int) {
	prev := SetMaxWorkers(n)
	t.Cleanup(func() { SetMaxWorkers(prev) })
}

// For runs body(lo, hi) over a partition of [0, n) using up to MaxWorkers
// goroutines. grain is the minimum chunk size per task; if n/grain is less
// than two the loop runs inline on the calling goroutine. body must be safe
// to call concurrently for disjoint ranges.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := MaxWorkers()
	chunks := n / grain
	if chunks > workers {
		chunks = workers
	}
	if chunks <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	var pan panicBox
	wg.Add(chunks)
	// Even split; chunk c covers [c*size+min(c,rem), ...).
	size, rem := n/chunks, n%chunks
	lo := 0
	for c := 0; c < chunks; c++ {
		hi := lo + size
		if c < rem {
			hi++
		}
		go func(lo, hi int) {
			defer wg.Done()
			defer pan.capture()
			body(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
	pan.repanic()
}

// Panic wraps a panic value captured on a worker goroutine together with
// that goroutine's stack at the moment of the panic. The caller's recover
// site runs on the invoking goroutine, whose stack no longer names the
// faulty operator — so the stack must be taken where the panic happened or
// the frame that matters is lost. Nested parallel loops pass an existing
// *Panic through unchanged to preserve the innermost capture.
type Panic struct {
	Val   any
	Stack []byte
}

// Error implements the error interface so a *Panic escaping through code
// that stringifies panic values still reads sensibly.
func (p *Panic) Error() string { return fmt.Sprintf("panic in parallel section: %v", p.Val) }

// panicBox transports the first panic from worker goroutines back to the
// caller, so user-defined operators that panic inside a parallel kernel
// surface on the invoking goroutine (where the GraphBLAS error model can
// convert them to GrB_PANIC) instead of crashing the process.
type panicBox struct {
	mu  sync.Mutex
	val *Panic
	set bool
}

func (p *panicBox) capture() {
	if r := recover(); r != nil {
		pv, ok := r.(*Panic)
		if !ok {
			pv = &Panic{Val: r, Stack: debug.Stack()}
		}
		p.mu.Lock()
		if !p.set {
			p.val, p.set = pv, true
		}
		p.mu.Unlock()
	}
}

func (p *panicBox) repanic() {
	if p.set {
		panic(p.val)
	}
}

// Capture runs f and returns the panic it raised, if any, wrapped in a
// *Panic carrying the stack taken at the panic site (an existing *Panic
// value passes through unchanged, preserving the innermost capture). It is
// the per-task form of the panicBox used by the parallel loops: the DAG
// scheduler runs each flush node under Capture so one faulty operation
// cannot unwind a worker and strand the nodes that depend on it.
func Capture(f func()) (p *Panic) {
	defer func() {
		if r := recover(); r != nil {
			pv, ok := r.(*Panic)
			if !ok {
				pv = &Panic{Val: r, Stack: debug.Stack()}
			}
			p = pv
		}
	}()
	f()
	return nil
}

// ForEachIndex runs body(i) for each i in [0, n) in parallel with automatic
// chunking. Convenience wrapper over For.
func ForEachIndex(n, grain int, body func(i int)) {
	For(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// PartitionByWeight splits [0, n) into at most parts contiguous ranges with
// approximately equal total weight, where cum is a cumulative weight array of
// length n+1 (cum[0] == 0, cum[i] is total weight of the first i items — the
// natural shape of a CSR row-pointer array). It returns the range boundaries:
// a slice b with b[0] == 0 and b[len(b)-1] == n; range k is [b[k], b[k+1]).
// Empty ranges are elided, so len(b) may be less than parts+1.
func PartitionByWeight(n, parts int, cum []int) []int {
	if parts < 1 {
		parts = 1
	}
	if n <= 0 {
		return []int{0, 0} // single empty range
	}
	total := cum[n]
	bounds := make([]int, 1, parts+1)
	bounds[0] = 0
	prev := 0
	for k := 1; k < parts; k++ {
		target := total * k / parts
		// binary search for first index with cum[i] >= target
		lo, hi := prev, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > prev && lo < n {
			bounds = append(bounds, lo)
			prev = lo
		}
	}
	bounds = append(bounds, n)
	return bounds
}

// ForRanges runs body(k, lo, hi) for each contiguous range k described by
// bounds (the shape PartitionByWeight returns: range k is
// [bounds[k], bounds[k+1])), one goroutine per range. Unlike ForWeighted it
// exposes the range ordinal, which deterministic kernels use to give each
// chunk its own scratch space and to lay results out in chunk order. A
// single range runs inline on the calling goroutine.
func ForRanges(bounds []int, body func(k, lo, hi int)) {
	n := len(bounds) - 1
	if n <= 0 {
		return
	}
	if n == 1 {
		body(0, bounds[0], bounds[1])
		return
	}
	var wg sync.WaitGroup
	var pan panicBox
	wg.Add(n)
	for k := 0; k < n; k++ {
		go func(k int) {
			defer wg.Done()
			defer pan.capture()
			body(k, bounds[k], bounds[k+1])
		}(k)
	}
	wg.Wait()
	pan.repanic()
}

// ForWeighted runs body over [0, n) partitioned by the cumulative weight
// array cum (length n+1), balancing total weight rather than index count.
// Used for nnz-balanced row loops over CSR matrices.
func ForWeighted(n int, cum []int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := MaxWorkers()
	if workers <= 1 || n == 1 || cum[n] < 2048 {
		body(0, n)
		return
	}
	bounds := PartitionByWeight(n, workers, cum)
	if len(bounds) <= 2 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	var pan panicBox
	wg.Add(len(bounds) - 1)
	for k := 0; k+1 < len(bounds); k++ {
		go func(lo, hi int) {
			defer wg.Done()
			defer pan.capture()
			body(lo, hi)
		}(bounds[k], bounds[k+1])
	}
	wg.Wait()
	pan.repanic()
}

package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	f := func(n16 uint16, grain8 uint8) bool {
		n := int(n16 % 5000)
		grain := int(grain8)
		hits := make([]int32, n)
		For(n, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForEmptyAndSingle(t *testing.T) {
	called := false
	For(0, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for n=0")
	}
	var total int64
	For(1, 100, func(lo, hi int) { atomic.AddInt64(&total, int64(hi-lo)) })
	if total != 1 {
		t.Fatalf("total %d", total)
	}
}

func TestForWeightedCoversRange(t *testing.T) {
	n := 1000
	cum := make([]int, n+1)
	for i := 0; i < n; i++ {
		w := 1
		if i == 0 {
			w = 100000 // heavily skewed first row
		}
		cum[i+1] = cum[i] + w
	}
	hits := make([]int32, n)
	ForWeighted(n, cum, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestPartitionByWeightBounds(t *testing.T) {
	cum := []int{0, 10, 20, 30, 40, 50}
	b := PartitionByWeight(5, 3, cum)
	if b[0] != 0 || b[len(b)-1] != 5 {
		t.Fatalf("bounds %v", b)
	}
	for k := 1; k < len(b); k++ {
		if b[k] <= b[k-1] {
			t.Fatalf("non-increasing bounds %v", b)
		}
	}
	if got := PartitionByWeight(0, 4, []int{0}); len(got) != 2 || got[0] != 0 {
		t.Fatalf("empty partition %v", got)
	}
}

func TestPanicPropagation(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic not propagated from worker")
		}
	}()
	For(1000, 1, func(lo, hi int) {
		if lo <= 500 && 500 < hi {
			panic("worker failure")
		}
	})
}

func TestSetMaxWorkers(t *testing.T) {
	SetMaxWorkersForTest(t, 1)
	if MaxWorkers() != 1 {
		t.Fatalf("MaxWorkers %d", MaxWorkers())
	}
	// With one worker everything runs inline.
	ran := 0
	For(100, 1, func(lo, hi int) { ran += hi - lo })
	if ran != 100 {
		t.Fatalf("ran %d", ran)
	}
	if SetMaxWorkers(0) != 1 {
		t.Fatal("SetMaxWorkers did not return previous value")
	}
	if MaxWorkers() != 1 {
		t.Fatalf("n<1 should clamp to 1, got %d", MaxWorkers())
	}
}

// fakeTB records cleanups like testing.T without running a real subtest.
type fakeTB struct{ cleanups []func() }

func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }

func TestSetMaxWorkersForTestRestores(t *testing.T) {
	SetMaxWorkersForTest(t, MaxWorkers()) // outer guard
	orig := MaxWorkers()
	ft := &fakeTB{}
	SetMaxWorkersForTest(ft, 2)
	if MaxWorkers() != 2 {
		t.Fatalf("bound not applied: %d", MaxWorkers())
	}
	SetMaxWorkersForTest(ft, 3)
	if MaxWorkers() != 3 {
		t.Fatalf("bound not applied: %d", MaxWorkers())
	}
	// LIFO cleanup, as testing.T runs them, must land back on the original.
	for i := len(ft.cleanups) - 1; i >= 0; i-- {
		ft.cleanups[i]()
	}
	if MaxWorkers() != orig {
		t.Fatalf("bound leaked: %d, want %d", MaxWorkers(), orig)
	}
}

package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachIndex(t *testing.T) {
	var sum int64
	ForEachIndex(100, 7, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum %d", sum)
	}
	ForEachIndex(0, 1, func(int) { t.Fatal("called for empty range") })
}

func TestForWeightedSmallFallsBackInline(t *testing.T) {
	// Below the weight threshold everything runs in one call.
	cum := []int{0, 1, 2, 3}
	calls := 0
	ForWeighted(3, cum, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 3 {
			t.Fatalf("unexpected range %d %d", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls %d", calls)
	}
}

func TestForWeightedPanicPropagation(t *testing.T) {
	n := 100000
	cum := make([]int, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + 1
	}
	defer func() {
		if recover() == nil {
			t.Fatal("panic not propagated")
		}
	}()
	ForWeighted(n, cum, func(lo, hi int) {
		if lo <= n/2 && n/2 < hi {
			panic("boom")
		}
	})
}

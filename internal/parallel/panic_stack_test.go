package parallel

import (
	"strings"
	"testing"
)

// TestPanicCarriesWorkerStack: a panic escaping a worker goroutine arrives at
// the caller wrapped in *Panic with the worker's stack, captured at the
// moment of the panic — the frames that name the faulty function.
func TestPanicCarriesWorkerStack(t *testing.T) {
	SetMaxWorkersForTest(t, 4)
	defer func() {
		r := recover()
		p, ok := r.(*Panic)
		if !ok {
			t.Fatalf("recovered %T, want *Panic", r)
		}
		if p.Val != "worker failure" {
			t.Fatalf("wrapped value %v", p.Val)
		}
		if !strings.Contains(string(p.Stack), "panic_stack_test.go") {
			t.Fatalf("stack does not name the panicking frame:\n%s", p.Stack)
		}
	}()
	For(1000, 1, func(lo, hi int) {
		if lo <= 500 && 500 < hi {
			panic("worker failure")
		}
	})
	t.Fatal("panic not propagated")
}

// TestPanicNotDoubleWrapped: nested parallel loops pass an existing *Panic
// through unchanged, preserving the innermost stack.
func TestPanicNotDoubleWrapped(t *testing.T) {
	SetMaxWorkersForTest(t, 4)
	defer func() {
		p, ok := recover().(*Panic)
		if !ok {
			t.Fatal("not a *Panic")
		}
		if _, nested := p.Val.(*Panic); nested {
			t.Fatal("panic wrapped twice")
		}
	}()
	For(100, 1, func(lo, hi int) {
		For(100, 1, func(lo2, hi2 int) {
			if lo2 == 0 && lo <= 50 && 50 < hi {
				panic("inner")
			}
		})
	})
}

package parallel

import (
	"strings"
	"testing"
)

func TestCaptureNoPanic(t *testing.T) {
	ran := false
	if p := Capture(func() { ran = true }); p != nil {
		t.Fatalf("Capture returned %v for a clean function", p)
	}
	if !ran {
		t.Fatal("Capture did not run the function")
	}
}

func TestCaptureWrapsPanic(t *testing.T) {
	p := Capture(func() { panic("boom") })
	if p == nil {
		t.Fatal("Capture returned nil for a panicking function")
	}
	if p.Val != "boom" {
		t.Fatalf("captured Val = %v, want boom", p.Val)
	}
	if len(p.Stack) == 0 || !strings.Contains(string(p.Stack), "TestCaptureWrapsPanic") {
		t.Fatal("captured stack does not name the panic site")
	}
}

// TestCapturePassthrough verifies an already-wrapped *Panic (e.g. from a
// nested parallel loop) passes through unchanged, preserving the innermost
// stack.
func TestCapturePassthrough(t *testing.T) {
	inner := &Panic{Val: "inner", Stack: []byte("inner stack")}
	p := Capture(func() { panic(inner) })
	if p != inner {
		t.Fatalf("Capture rewrapped an existing *Panic: got %v", p)
	}
}

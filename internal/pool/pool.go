// Package pool provides freelist-backed scratch buffers for the kernel hot
// paths — ROADMAP item 5's allocation discipline made concrete. The sparse
// kernels need three recurring scratch shapes that are *not* generic over
// the element domain: index prefix sums ([]int), per-chunk contribution
// counts ([]int32), and presence flags ([]bool). Allocating them per
// operation turns kernel throughput into GC pressure proportional to matrix
// dimension; drawing them from a freelist makes the steady state
// allocation-free.
//
// The implementation is deliberately a mutex-guarded [][]T freelist rather
// than sync.Pool: Put'ing a slice into a sync.Pool boxes the slice header
// into an interface, which itself allocates — exactly the per-call
// allocation the pool exists to remove — and sync.Pool's GC-cycle draining
// defeats steady-state reuse for bursty op queues. The kernels call Get/Put
// once per operation or per parallel chunk (coarse-grained), so a plain
// mutex is never contended enough to matter.
//
// Contract: Get* returns a zeroed slice of length n; Put* returns a buffer
// to the freelist and the caller must not touch it afterwards. Buffers are
// shelved by power-of-two capacity class, so a recycled buffer always has
// capacity for the class it is shelved under; anything larger than the
// largest class or smaller than a class floor is simply dropped for the
// collector. Every Get must be matched by a Put on every path (or the
// buffer handed off to an owner who takes over the obligation) — the
// hotalloc analyzer enforces exactly this for //grblint:hotpath functions.
package pool

import (
	"math/bits"
	"sync"
)

// maxClass bounds the capacity classes: buffers up to 1<<maxClass elements
// are recycled, larger ones go to the collector (a 64M-entry scratch slice
// is not a steady-state shape; holding it forever would be a leak).
const maxClass = 26

// shelfCap bounds how many buffers a class retains; beyond it, Put drops
// the buffer. Workers × a small factor covers every engine shape.
const shelfCap = 64

// freelist is one element type's shelves, one per capacity class.
type freelist[T any] struct {
	mu      sync.Mutex
	classes [maxClass + 1][][]T
}

// classFor returns the smallest class whose capacity 1<<class holds n.
func classFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// get returns a zeroed slice of length n, recycled when a buffer of n's
// class is shelved, freshly allocated at the class capacity otherwise.
func (f *freelist[T]) get(n int) []T {
	c := classFor(n)
	if c > maxClass {
		return make([]T, n)
	}
	f.mu.Lock()
	shelf := f.classes[c]
	if len(shelf) == 0 {
		f.mu.Unlock()
		return make([]T, n, 1<<c)
	}
	s := shelf[len(shelf)-1]
	shelf[len(shelf)-1] = nil
	f.classes[c] = shelf[:len(shelf)-1]
	f.mu.Unlock()
	s = s[:n]
	clear(s)
	return s
}

// put shelves s under the largest class its capacity fully covers, so a
// later get of that class can always reslice it to the class length.
func (f *freelist[T]) put(s []T) {
	c := cap(s)
	if c == 0 {
		return
	}
	class := bits.Len(uint(c)) - 1 // floor log2: 1<<class <= cap
	if class > maxClass {
		return
	}
	f.mu.Lock()
	if len(f.classes[class]) < shelfCap {
		f.classes[class] = append(f.classes[class], s[:0])
	}
	f.mu.Unlock()
}

var (
	intFree   freelist[int]
	int32Free freelist[int32]
	boolFree  freelist[bool]
)

// GetInts returns a zeroed []int of length n from the freelist.
func GetInts(n int) []int { return intFree.get(n) }

// PutInts returns an int buffer to the freelist; the caller must not use it
// afterwards.
func PutInts(s []int) { intFree.put(s) }

// GetInt32s returns a zeroed []int32 of length n from the freelist.
func GetInt32s(n int) []int32 { return int32Free.get(n) }

// PutInt32s returns an int32 buffer to the freelist; the caller must not
// use it afterwards.
func PutInt32s(s []int32) { int32Free.put(s) }

// GetBools returns a zeroed []bool of length n from the freelist.
func GetBools(n int) []bool { return boolFree.get(n) }

// PutBools returns a bool buffer to the freelist; the caller must not use
// it afterwards.
func PutBools(s []bool) { boolFree.put(s) }

package pool

import (
	"testing"
)

func TestGetReturnsZeroedLengthN(t *testing.T) {
	for _, n := range []int{0, 1, 3, 7, 64, 100, 1 << 12} {
		s := GetInts(n)
		if len(s) != n {
			t.Fatalf("GetInts(%d): len = %d", n, len(s))
		}
		for i, v := range s {
			if v != 0 {
				t.Fatalf("GetInts(%d)[%d] = %d, want 0", n, i, v)
			}
		}
		for i := range s {
			s[i] = i + 1 // dirty it before returning
		}
		PutInts(s)
	}
	// A recycled buffer must come back zeroed even though it was dirtied.
	s := GetInts(100)
	for i, v := range s {
		if v != 0 {
			t.Fatalf("recycled GetInts(100)[%d] = %d, want 0", i, v)
		}
	}
	PutInts(s)
}

func TestRecyclesBacking(t *testing.T) {
	a := GetBools(500)
	a[0] = true
	PutBools(a)
	b := GetBools(400) // same class (512), must reuse the shelved buffer
	if cap(b) != cap(a[:cap(a)]) || &b[0] != &a[0] {
		t.Fatalf("GetBools(400) did not recycle the shelved 500-cap buffer")
	}
	if b[0] {
		t.Fatalf("recycled buffer not cleared")
	}
	PutBools(b)
}

func TestClassFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := classFor(n); got != want {
			t.Fatalf("classFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestOversizedBypassesShelves(t *testing.T) {
	huge := 1<<maxClass + 1
	s := GetInt32s(huge)
	if len(s) != huge {
		t.Fatalf("oversized GetInt32s: len = %d", len(s))
	}
	PutInt32s(s) // dropped, not shelved — must not panic
}

// TestSteadyStateAllocFree is the pool's reason to exist: once warm, a
// Get/Put round trip performs zero allocations. sync.Pool cannot pass this
// test with slice values — boxing the header on Put allocates.
func TestSteadyStateAllocFree(t *testing.T) {
	PutInts(GetInts(1 << 10))
	PutInt32s(GetInt32s(1 << 10))
	PutBools(GetBools(1 << 10))
	allocs := testing.AllocsPerRun(200, func() {
		i := GetInts(1 << 10)
		j := GetInt32s(1 << 10)
		b := GetBools(1 << 10)
		PutBools(b)
		PutInt32s(j)
		PutInts(i)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f objects per run, want 0", allocs)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				s := GetInts(256)
				s[i%256] = i
				PutInts(s)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

package graphblas_test

import (
	"os"
	"testing"
	"testing/quick"

	"graphblas"
)

func TestMain(m *testing.M) {
	graphblas.ResetForTesting()
	if err := graphblas.Init(graphblas.NonBlocking); err != nil {
		panic(err)
	}
	os.Exit(m.Run())
}

// TestAPISurface_TableIII checks the data-type row of Table III: every
// opaque object kind of the C API has a counterpart with the documented
// lifecycle (new → use → free).
func TestAPISurface_TableIII(t *testing.T) {
	// GrB_Matrix / GrB_Vector.
	m, err := graphblas.NewMatrix[float32](3, 4)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	v, err := graphblas.NewVector[float32](5)
	if err != nil {
		t.Fatalf("NewVector: %v", err)
	}
	// GrB_Monoid / GrB_Semiring built from lower-level operators (Table VI
	// constructors).
	add, err := graphblas.NewMonoid(graphblas.Plus[float32](), 0)
	if err != nil {
		t.Fatalf("NewMonoid: %v", err)
	}
	s, err := graphblas.NewSemiring(add, graphblas.Times[float32]())
	if err != nil {
		t.Fatalf("NewSemiring: %v", err)
	}
	if !s.Defined() {
		t.Fatal("semiring undefined")
	}
	// GrB_Descriptor with the Table V fields and values.
	d, err := graphblas.NewDescriptor()
	if err != nil {
		t.Fatalf("NewDescriptor: %v", err)
	}
	for _, set := range []struct {
		f graphblas.Field
		v graphblas.Value
	}{
		{graphblas.OutP, graphblas.Replace},
		{graphblas.MaskField, graphblas.SCMP},
		{graphblas.Inp0, graphblas.Tran},
		{graphblas.Inp1, graphblas.Tran},
	} {
		if err := d.Set(set.f, set.v); err != nil {
			t.Fatalf("Descriptor.Set(%v, %v): %v", set.f, set.v, err)
		}
	}
	if err := d.Set(graphblas.OutP, graphblas.Tran); graphblas.InfoOf(err) != graphblas.InvalidValue {
		t.Fatalf("invalid descriptor combination accepted: %v", err)
	}
	// GrB_Index is int; GrB_Info is the Info type behind errors.
	if graphblas.InfoOf(nil) != graphblas.Success {
		t.Fatal("InfoOf(nil)")
	}
	if err := m.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := v.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
}

// TestAPISurface_TableIV checks each predefined operator the paper's
// example uses, by name.
func TestAPISurface_TableIV(t *testing.T) {
	if graphblas.Times[int32]().F(6, 7) != 42 {
		t.Fatal("GrB_TIMES_INT32")
	}
	if graphblas.Plus[int32]().F(6, 7) != 13 {
		t.Fatal("GrB_PLUS_INT32")
	}
	if graphblas.Plus[float32]().F(1.25, 0.5) != 1.75 {
		t.Fatal("GrB_PLUS_FP32")
	}
	if graphblas.Times[float32]().F(2, 2.5) != 5 {
		t.Fatal("GrB_TIMES_FP32")
	}
	if graphblas.MInv[float32]().F(8) != 0.125 {
		t.Fatal("GrB_MINV_FP32")
	}
	if graphblas.Identity[bool]().F(true) != true {
		t.Fatal("GrB_IDENTITY_BOOL")
	}
}

// TestAPISurface_TableVI exercises every method row of Table VI through
// the facade, mirroring their use in Figure 3.
func TestAPISurface_TableVI(t *testing.T) {
	// GrB_Monoid_new, GrB_Semiring_new.
	int32Add, err := graphblas.NewMonoid(graphblas.Plus[int32](), 0)
	if err != nil {
		t.Fatal(err)
	}
	int32AddMul, err := graphblas.NewSemiring(int32Add, graphblas.Times[int32]())
	if err != nil {
		t.Fatal(err)
	}
	// GrB_Vector_new, GrB_Matrix_new.
	n := 6
	a, err := graphblas.NewMatrix[int32](n, n)
	if err != nil {
		t.Fatal(err)
	}
	// GrB_Matrix_build with a dup operator.
	if err := a.Build(
		[]int{0, 0, 1, 2, 3, 4, 4},
		[]int{1, 1, 2, 3, 4, 5, 5},
		[]int32{1, 1, 1, 1, 1, 1, 1},
		graphblas.Plus[int32](),
	); err != nil {
		t.Fatal(err)
	}
	// GrB_Matrix_nrows, GrB_Matrix_nvals.
	if nr, _ := a.NRows(); nr != n {
		t.Fatalf("nrows %d", nr)
	}
	if nv, _ := a.NVals(); nv != 5 { // duplicates combined
		t.Fatalf("nvals %d", nv)
	}
	if x, _ := a.ExtractElement(0, 1); x != 2 {
		t.Fatalf("dup combine: %d", x)
	}
	// GrB_Descriptor_new / _set.
	desc, _ := graphblas.NewDescriptor()
	_ = desc.Set(graphblas.Inp0, graphblas.Tran)
	_ = desc.Set(graphblas.MaskField, graphblas.SCMP)
	_ = desc.Set(graphblas.OutP, graphblas.Replace)
	// GrB_mxm with mask and the descriptor.
	c, _ := graphblas.NewMatrix[int32](n, n)
	if err := graphblas.MxM(c, a, graphblas.NoAccum[int32](), int32AddMul, a, a, desc); err != nil {
		t.Fatalf("mxm: %v", err)
	}
	// GrB_eWiseMult / GrB_eWiseAdd.
	if err := graphblas.EWiseMultM(c, graphblas.NoMask, graphblas.NoAccum[int32](), graphblas.Times[int32](), a, a, nil); err != nil {
		t.Fatalf("eWiseMult: %v", err)
	}
	if err := graphblas.EWiseAddM(c, graphblas.NoMask, graphblas.NoAccum[int32](), graphblas.Plus[int32](), a, a, nil); err != nil {
		t.Fatalf("eWiseAdd: %v", err)
	}
	// GrB_extract.
	sub, _ := graphblas.NewMatrix[int32](n, 2)
	if err := graphblas.ExtractSubmatrix(sub, graphblas.NoMask, graphblas.NoAccum[int32](), a, graphblas.All, []int{1, 2}, nil); err != nil {
		t.Fatalf("extract: %v", err)
	}
	// GrB_assign (scalar form, GrB_ALL).
	if err := graphblas.AssignMatrixScalar(c, graphblas.NoMask, graphblas.NoAccum[int32](), 7, graphblas.All, graphblas.All, nil); err != nil {
		t.Fatalf("assign: %v", err)
	}
	// GrB_apply.
	if err := graphblas.ApplyM(c, graphblas.NoMask, graphblas.NoAccum[int32](), graphblas.AInv[int32](), c, nil); err != nil {
		t.Fatalf("apply: %v", err)
	}
	// GrB_reduce (row reduce into a vector, with accumulator).
	delta, _ := graphblas.NewVector[int32](n)
	if err := graphblas.AssignVectorScalar(delta, graphblas.NoMaskV, graphblas.NoAccum[int32](), -1, graphblas.All, nil); err != nil {
		t.Fatal(err)
	}
	if err := graphblas.ReduceMatrixToVector(delta, graphblas.NoMaskV, graphblas.Plus[int32](), int32Add, c, nil); err != nil {
		t.Fatalf("reduce: %v", err)
	}
	if x, _ := delta.ExtractElement(0); x != -7*int32(n)-1 {
		t.Fatalf("reduce+accum value %d", x)
	}
	// GrB_wait terminates the sequence.
	if err := graphblas.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

// TestTableI_SemiringLawsThroughAPI property-checks the defining laws of
// the five Table I semirings via actual GraphBLAS reductions: folding a
// vector with the additive monoid is order-insensitive, and ⊗ distributes
// over ⊕ elementwise.
func TestTableI_SemiringLaws(t *testing.T) {
	bound := func(v int32) float64 { return float64(v % 1024) }
	f := func(x0, y0, z0 int32) bool {
		x, y, z := bound(x0), bound(y0), bound(z0)
		check := func(s graphblas.Semiring[float64, float64, float64]) bool {
			add, mul := s.Add.Op.F, s.Mul.F
			if add(x, y) != add(y, x) {
				return false
			}
			if add(add(x, y), z) != add(x, add(y, z)) {
				return false
			}
			if add(s.Add.Identity, x) != x {
				return false
			}
			return mul(x, add(y, z)) == add(mul(x, y), mul(x, z))
		}
		if !check(graphblas.PlusTimes[float64]()) ||
			!check(graphblas.MinPlus[float64]()) ||
			!check(graphblas.MaxPlus[float64]()) ||
			!check(graphblas.MinMax[float64]()) {
			return false
		}
		g := graphblas.XorAnd()
		bx, by, bz := x0%2 == 0, y0%2 == 0, z0%2 == 0
		if g.Mul.F(bx, g.Add.Op.F(by, bz)) != g.Add.Op.F(g.Mul.F(bx, by), g.Mul.F(bx, bz)) {
			return false
		}
		u := int(uint32(x0) % 64)
		a := graphblas.IntSetOf(64, u, u/2)
		b := graphblas.IntSetOf(64, int(uint32(y0)%64))
		c := graphblas.IntSetOf(64, int(uint32(z0)%64), u/3)
		ps := graphblas.UnionIntersect(64)
		return ps.Mul.F(a, ps.Add.Op.F(b, c)).Equal(ps.Add.Op.F(ps.Mul.F(a, b), ps.Mul.F(a, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTableI_MatrixSemanticsSwap: the same stored matrix gives different
// results as the semiring changes, with no rebuild — the central claim of
// Section II.
func TestTableI_MatrixSemanticsSwap(t *testing.T) {
	// 0→1 (3), 1→2 (4), 0→2 (10): two-hop 0→1→2 costs 3·4=12 arithmetic,
	// 3+4=7 tropical; direct edge 10.
	a, _ := graphblas.NewMatrix[float64](3, 3)
	if err := a.Build([]int{0, 1, 0}, []int{1, 2, 2}, []float64{3, 4, 10}, graphblas.NoAccum[float64]()); err != nil {
		t.Fatal(err)
	}
	sq := func(s graphblas.Semiring[float64, float64, float64]) (float64, bool) {
		c, _ := graphblas.NewMatrix[float64](3, 3)
		if err := graphblas.MxM(c, graphblas.NoMask, graphblas.NoAccum[float64](), s, a, a, nil); err != nil {
			t.Fatal(err)
		}
		v, err := c.ExtractElement(0, 2)
		return v, err == nil
	}
	if v, ok := sq(graphblas.PlusTimes[float64]()); !ok || v != 12 {
		t.Fatalf("arithmetic A² (0,2): %v %v", v, ok)
	}
	if v, ok := sq(graphblas.MinPlus[float64]()); !ok || v != 7 {
		t.Fatalf("tropical A² (0,2): %v %v", v, ok)
	}
	if v, ok := sq(graphblas.MaxMin[float64]()); !ok || v != 3 {
		t.Fatalf("bottleneck A² (0,2): %v %v", v, ok)
	}
	// The matrix never changed.
	if nv, _ := a.NVals(); nv != 3 {
		t.Fatalf("matrix mutated: %d", nv)
	}
}

// TestFacadeQuickstart runs the package-doc quickstart shape end to end.
func TestFacadeQuickstart(t *testing.T) {
	const n = 4
	a, _ := graphblas.NewMatrix[float64](n, n)
	if err := a.Build([]int{0, 1, 2}, []int{1, 2, 3}, []float64{1, 1, 1}, graphblas.NoAccum[float64]()); err != nil {
		t.Fatal(err)
	}
	frontier, _ := graphblas.NewVector[float64](n)
	_ = frontier.SetElement(0, 0)
	for i := 0; i < 3; i++ {
		if err := graphblas.VxM(frontier, graphblas.NoMaskV, graphblas.Min[float64](),
			graphblas.MinPlus[float64](), frontier, a, nil); err != nil {
			t.Fatal(err)
		}
	}
	if d, err := frontier.ExtractElement(3); err != nil || d != 3 {
		t.Fatalf("dist to 3: %v %v", d, err)
	}
}
